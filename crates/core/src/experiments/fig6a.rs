//! Fig. 6a — thermal stability factor vs operating temperature at
//! pitch = 2×eCD, for every stray-field variant.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_array::{CouplingAnalyzer, NeighborhoodPattern};
use mramsim_mtj::{presets, MtjState};
use mramsim_units::{Celsius, Nanometer, Oersted};

/// Parameters of the Fig. 6a experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size (paper: 35 nm).
    pub ecd: Nanometer,
    /// Pitch factor (paper: 2×eCD, Ψ ≈ 2 %).
    pub pitch_factor: f64,
    /// Temperature sweep in °C (paper: 0…150 °C).
    pub temps_c: Vec<f64>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(35.0),
            pitch_factor: 2.0,
            temps_c: (0..=15).map(|i| 10.0 * f64::from(i)).collect(),
        }
    }
}

/// One temperature row of Fig. 6a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6aRow {
    /// Operating temperature (°C).
    pub temp_c: f64,
    /// Intrinsic `Δ0` (no stray field).
    pub delta0: f64,
    /// `ΔP` with intra-cell field only.
    pub delta_p_intra: f64,
    /// `ΔAP` with intra-cell field only.
    pub delta_ap_intra: f64,
    /// `ΔP` at `NP8 = 0` (the worst case).
    pub delta_p_np0: f64,
    /// `ΔP` at `NP8 = 255`.
    pub delta_p_np255: f64,
    /// `ΔAP` at `NP8 = 0`.
    pub delta_ap_np0: f64,
    /// `ΔAP` at `NP8 = 255`.
    pub delta_ap_np255: f64,
}

/// The regenerated Fig. 6a data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6a {
    /// One row per temperature.
    pub rows: Vec<Fig6aRow>,
    /// Ψ at the chosen pitch.
    pub psi: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates device/array failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig6a, CoreError> {
    if params.temps_c.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "temps_c",
            message: "need at least one temperature".into(),
        });
    }
    let device = presets::imec_like(params.ecd)?;
    let pitch = Nanometer::new(params.pitch_factor * params.ecd.value());
    let coupling = CouplingAnalyzer::new(device.clone(), pitch)?;
    let intra = coupling.intra_hz();
    let h_np0 = coupling.total_hz(NeighborhoodPattern::ALL_P);
    let h_np255 = coupling.total_hz(NeighborhoodPattern::ALL_AP);
    let sw = device.switching();

    let mut rows = Vec::with_capacity(params.temps_c.len());
    for &c in &params.temps_c {
        let t = Celsius::new(c).to_kelvin();
        let d = |state: MtjState, hz: Oersted| sw.delta(state, hz, t);
        rows.push(Fig6aRow {
            temp_c: c,
            delta0: d(MtjState::Parallel, Oersted::ZERO)?,
            delta_p_intra: d(MtjState::Parallel, intra)?,
            delta_ap_intra: d(MtjState::AntiParallel, intra)?,
            delta_p_np0: d(MtjState::Parallel, h_np0)?,
            delta_p_np255: d(MtjState::Parallel, h_np255)?,
            delta_ap_np0: d(MtjState::AntiParallel, h_np0)?,
            delta_ap_np255: d(MtjState::AntiParallel, h_np255)?,
        });
    }
    Ok(Fig6a {
        rows,
        psi: coupling.psi(presets::MEASURED_HC),
    })
}

impl Fig6a {
    /// The full sweep as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig6a: delta vs temperature (pitch=2xeCD)",
            &[
                "temp_c",
                "delta0",
                "deltaP_intra",
                "deltaAP_intra",
                "deltaP_np0",
                "deltaP_np255",
                "deltaAP_np0",
                "deltaAP_np255",
            ],
        );
        for r in &self.rows {
            t.push_row(&[
                format!("{:.0}", r.temp_c),
                format!("{:.2}", r.delta0),
                format!("{:.2}", r.delta_p_intra),
                format!("{:.2}", r.delta_ap_intra),
                format!("{:.2}", r.delta_p_np0),
                format!("{:.2}", r.delta_p_np255),
                format!("{:.2}", r.delta_ap_np0),
                format!("{:.2}", r.delta_ap_np255),
            ]);
        }
        t
    }

    /// All curves as an ASCII chart.
    #[must_use]
    pub fn chart(&self) -> String {
        let series = |f: fn(&Fig6aRow) -> f64, label: &str| {
            Series::new(label, self.rows.iter().map(|r| (r.temp_c, f(r))).collect())
        };
        ascii_chart(
            &[
                series(|r| r.delta0, "delta0 (Hz=0)"),
                series(|r| r.delta_p_intra, "P intra"),
                series(|r| r.delta_ap_intra, "AP intra"),
                series(|r| r.delta_p_np0, "P NP8=0"),
                series(|r| r.delta_p_np255, "P NP8=255"),
                series(|r| r.delta_ap_np0, "AP NP8=0"),
                series(|r| r.delta_ap_np255, "AP NP8=255"),
            ],
            64,
            18,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig6a {
        run(&Params::default()).unwrap()
    }

    #[test]
    fn delta0_anchor_at_room_temperature() {
        let f = fig();
        let room = f
            .rows
            .iter()
            .min_by(|a, b| {
                (a.temp_c - 26.85)
                    .abs()
                    .partial_cmp(&(b.temp_c - 26.85).abs())
                    .unwrap()
            })
            .unwrap();
        assert!((room.delta0 - 45.5).abs() < 1.5, "Δ0 = {}", room.delta0);
    }

    #[test]
    fn every_curve_falls_with_temperature() {
        let f = fig();
        for w in f.rows.windows(2) {
            assert!(w[1].delta0 < w[0].delta0);
            assert!(w[1].delta_p_np0 < w[0].delta_p_np0);
            assert!(w[1].delta_ap_np255 < w[0].delta_ap_np255);
        }
    }

    #[test]
    fn intra_field_splits_p_below_ap_by_thirty_percent() {
        // The ~30 % split between the two states (paper §V-C; see
        // DESIGN.md deviation #2 for the sign reading).
        let f = fig();
        for r in &f.rows {
            assert!(r.delta_p_intra < r.delta0);
            assert!(r.delta_ap_intra > r.delta0);
            let split = r.delta_p_intra / r.delta_ap_intra;
            assert!(split > 0.65 && split < 0.80, "split = {split}");
        }
    }

    #[test]
    fn worst_case_is_p_state_with_np0() {
        // "the MTJ device has the smallest Δ when the victim cell is in
        // P state and all neighboring cells are also in P state".
        let f = fig();
        for r in &f.rows {
            let all = [
                r.delta0,
                r.delta_p_intra,
                r.delta_ap_intra,
                r.delta_p_np0,
                r.delta_p_np255,
                r.delta_ap_np0,
                r.delta_ap_np255,
            ];
            let min = all.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(min, r.delta_p_np0);
        }
    }

    #[test]
    fn inter_cell_coupling_orders_the_p_curves() {
        // For the P state, NP8 = 0 (lowest inter field) is worse than
        // NP8 = 255.
        let f = fig();
        for r in &f.rows {
            assert!(r.delta_p_np0 < r.delta_p_np255);
            assert!(r.delta_ap_np0 > r.delta_ap_np255);
        }
    }

    #[test]
    fn psi_is_about_two_to_three_percent() {
        let f = fig();
        assert!(f.psi > 0.015 && f.psi < 0.04, "Ψ = {}", f.psi);
    }

    #[test]
    fn rendering_works() {
        let f = fig();
        assert_eq!(f.to_table().row_count(), 16);
        assert!(f.chart().contains("P NP8=0"));
    }
}
