//! Fig. 4c — critical switching current vs pitch under different stray
//! fields.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_array::{CouplingAnalyzer, NeighborhoodPattern};
use mramsim_mtj::{presets, SwitchDirection};
use mramsim_units::{Kelvin, Nanometer, Oersted};

/// Parameters of the Fig. 4c experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size (paper evaluates eCD = 35 nm).
    pub ecd: Nanometer,
    /// Pitch sweep bounds (paper: 1.5×eCD … 200 nm).
    pub pitch_range: (f64, f64),
    /// Number of pitch samples.
    pub points: usize,
    /// Operating temperature.
    pub temperature: Kelvin,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(35.0),
            pitch_range: (52.5, 200.0),
            points: 25,
            temperature: Kelvin::new(300.0),
        }
    }
}

/// One Ic-vs-pitch data row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4cRow {
    /// Array pitch (nm).
    pub pitch_nm: f64,
    /// `Ic(AP→P)` with `NP8 = 0` (µA).
    pub ap_to_p_np0: f64,
    /// `Ic(AP→P)` with `NP8 = 255` (µA).
    pub ap_to_p_np255: f64,
    /// `Ic(P→AP)` with `NP8 = 0` (µA).
    pub p_to_ap_np0: f64,
    /// `Ic(P→AP)` with `NP8 = 255` (µA).
    pub p_to_ap_np255: f64,
}

/// The regenerated Fig. 4c data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4c {
    /// Pitch-dependent rows (intra + inter coupling).
    pub rows: Vec<Fig4cRow>,
    /// Pitch-independent reference: the intrinsic `Ic` (no stray field).
    pub intrinsic_ua: f64,
    /// Pitch-independent `Ic(AP→P)` with only the intra-cell field.
    pub ap_to_p_intra_ua: f64,
    /// Pitch-independent `Ic(P→AP)` with only the intra-cell field.
    pub p_to_ap_intra_ua: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates device/array failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig4c, CoreError> {
    if params.points < 2 || !(params.pitch_range.1 > params.pitch_range.0) {
        return Err(CoreError::InvalidParameter {
            name: "points/pitch_range",
            message: "need >= 2 samples and an increasing range".into(),
        });
    }
    let device = presets::imec_like(params.ecd)?;
    let t = params.temperature;
    let sw = device.switching().clone();
    let intra = device.intra_hz_at_fl_center()?;

    let ua = |dir: SwitchDirection, hz: Oersted| sw.critical_current(dir, hz, t).value();

    let mut rows = Vec::with_capacity(params.points);
    for i in 0..params.points {
        let frac = i as f64 / (params.points - 1) as f64;
        let pitch = Nanometer::new(
            params.pitch_range.0 + (params.pitch_range.1 - params.pitch_range.0) * frac,
        );
        let coupling = CouplingAnalyzer::new(device.clone(), pitch)?;
        let h0 = coupling.total_hz(NeighborhoodPattern::ALL_P);
        let h255 = coupling.total_hz(NeighborhoodPattern::ALL_AP);
        rows.push(Fig4cRow {
            pitch_nm: pitch.value(),
            ap_to_p_np0: ua(SwitchDirection::ApToP, h0),
            ap_to_p_np255: ua(SwitchDirection::ApToP, h255),
            p_to_ap_np0: ua(SwitchDirection::PToAp, h0),
            p_to_ap_np255: ua(SwitchDirection::PToAp, h255),
        });
    }

    Ok(Fig4c {
        rows,
        intrinsic_ua: ua(SwitchDirection::ApToP, Oersted::ZERO),
        ap_to_p_intra_ua: ua(SwitchDirection::ApToP, intra),
        p_to_ap_intra_ua: ua(SwitchDirection::PToAp, intra),
    })
}

impl Fig4c {
    /// The full sweep as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig4c: Ic vs pitch (uA)",
            &[
                "pitch_nm",
                "AP->P NP8=0",
                "AP->P NP8=255",
                "P->AP NP8=0",
                "P->AP NP8=255",
            ],
        );
        for r in &self.rows {
            t.push_row(&[
                format!("{:.1}", r.pitch_nm),
                format!("{:.2}", r.ap_to_p_np0),
                format!("{:.2}", r.ap_to_p_np255),
                format!("{:.2}", r.p_to_ap_np0),
                format!("{:.2}", r.p_to_ap_np255),
            ]);
        }
        t
    }

    /// All curve families as an ASCII chart.
    #[must_use]
    pub fn chart(&self) -> String {
        let pick = |f: fn(&Fig4cRow) -> f64, label: &str| {
            Series::new(
                label,
                self.rows.iter().map(|r| (r.pitch_nm, f(r))).collect(),
            )
        };
        let flat = |y: f64, label: &str| {
            Series::new(label, self.rows.iter().map(|r| (r.pitch_nm, y)).collect())
        };
        ascii_chart(
            &[
                pick(|r| r.ap_to_p_np0, "AP->P NP8=0"),
                pick(|r| r.ap_to_p_np255, "AP->P NP8=255"),
                pick(|r| r.p_to_ap_np0, "P->AP NP8=0"),
                pick(|r| r.p_to_ap_np255, "P->AP NP8=255"),
                flat(self.intrinsic_ua, "intrinsic (no stray)"),
                flat(self.ap_to_p_intra_ua, "AP->P intra only"),
                flat(self.p_to_ap_intra_ua, "P->AP intra only"),
            ],
            64,
            18,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig4c {
        run(&Params::default()).unwrap()
    }

    #[test]
    fn paper_anchor_values_hold() {
        // Ic0 = 57.2 µA; intra-only: 61.7 / 52.8 µA (±7 %).
        let f = fig();
        assert!((f.intrinsic_ua - 57.2).abs() < 0.2, "{}", f.intrinsic_ua);
        assert!(
            (f.ap_to_p_intra_ua - 61.7).abs() < 0.6,
            "{}",
            f.ap_to_p_intra_ua
        );
        assert!(
            (f.p_to_ap_intra_ua - 52.8).abs() < 0.6,
            "{}",
            f.p_to_ap_intra_ua
        );
    }

    #[test]
    fn ap_to_p_sits_above_p_to_ap_under_negative_stray() {
        let f = fig();
        for r in &f.rows {
            assert!(r.ap_to_p_np0 > f.intrinsic_ua);
            assert!(r.p_to_ap_np0 < f.intrinsic_ua);
        }
    }

    #[test]
    fn np_variation_grows_as_pitch_shrinks() {
        // "the variation in Ic(AP→P) between different neighborhood
        // patterns increases as the pitch goes down".
        let f = fig();
        let spread_first = (f.rows[0].ap_to_p_np0 - f.rows[0].ap_to_p_np255).abs();
        let spread_last =
            (f.rows.last().unwrap().ap_to_p_np0 - f.rows.last().unwrap().ap_to_p_np255).abs();
        assert!(spread_first > 4.0 * spread_last);
    }

    #[test]
    fn np0_raises_and_np255_lowers_ic_ap_to_p_at_small_pitch() {
        // "Ic(AP→P) becomes larger at smaller pitches when NP8 = 0,
        // while it shows an opposite trend when NP8 = 255".
        let f = fig();
        let first = &f.rows[0];
        let last = f.rows.last().unwrap();
        assert!(first.ap_to_p_np0 > last.ap_to_p_np0);
        assert!(first.ap_to_p_np255 < last.ap_to_p_np255);
    }

    #[test]
    fn variation_is_marginal_at_80nm() {
        // Paper: "at pitch ≈ 80 nm (corresponding to Ψ = 2 %), the
        // variation is marginal".
        let f = fig();
        let row = f
            .rows
            .iter()
            .min_by(|a, b| {
                (a.pitch_nm - 80.0)
                    .abs()
                    .partial_cmp(&(b.pitch_nm - 80.0).abs())
                    .unwrap()
            })
            .unwrap();
        let spread = (row.ap_to_p_np0 - row.ap_to_p_np255).abs();
        assert!(spread < 1.5, "spread at ~80 nm = {spread} uA");
    }

    #[test]
    fn rendering_works() {
        let f = fig();
        assert_eq!(f.to_table().row_count(), 25);
        assert!(f.chart().contains("intrinsic"));
    }
}
