//! Fig. 4a — `Hz_s_inter` at the victim FL for the 25 neighbourhood
//! symmetry classes.

use crate::report::Table;
use crate::CoreError;
use mramsim_array::{CouplingAnalyzer, InterFieldBreakdown, PatternClass};
use mramsim_mtj::presets;
use mramsim_units::{Nanometer, Oersted};

/// Parameters of the Fig. 4a experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size (paper: 55 nm).
    pub ecd: Nanometer,
    /// Array pitch (paper: 90 nm, the SK hynix design spec \[2\]).
    pub pitch: Nanometer,
    /// Biot–Savart segments per loop (speed/accuracy ablation knob).
    pub segments: usize,
    /// Use the exact elliptic-integral loop backend instead of the
    /// polygonal discretisation.
    pub exact: bool,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(55.0),
            pitch: Nanometer::new(90.0),
            segments: mramsim_magnetics::DEFAULT_SEGMENTS,
            exact: false,
        }
    }
}

/// The regenerated Fig. 4a data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4a {
    /// `Hz_s_inter` per symmetry class, direct-major order (25 values).
    pub classes: Vec<(PatternClass, Oersted)>,
    /// The physical decomposition (baseline + steps).
    pub breakdown: InterFieldBreakdown,
    /// Extremes over all 256 patterns.
    pub extremes: (Oersted, Oersted),
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates analyzer failures (e.g. an overlapping pitch).
pub fn run(params: &Params) -> Result<Fig4a, CoreError> {
    let device = presets::imec_like_with(params.ecd, params.segments, params.exact)?;
    let analyzer = CouplingAnalyzer::new(device, params.pitch)?;
    let classes: Vec<(PatternClass, Oersted)> = PatternClass::all()
        .map(|c| (c, analyzer.inter_hz_class(c)))
        .collect();
    Ok(Fig4a {
        classes,
        breakdown: analyzer.breakdown(),
        extremes: analyzer.inter_hz_extremes(),
    })
}

impl Fig4a {
    /// The 5×5 class matrix as a table (rows: #1s in direct neighbours;
    /// columns: #1s in diagonal neighbours) — the exact layout of
    /// Fig. 4a.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig4a: Hz_s_inter (Oe) by neighbourhood class",
            &["direct\\diag", "0", "1", "2", "3", "4"],
        );
        for d in 0..=4u8 {
            let mut row = vec![format!("{d}")];
            for g in 0..=4u8 {
                let value = self
                    .classes
                    .iter()
                    .find(|(c, _)| c.direct_ones == d && c.diagonal_ones == g)
                    .map_or(f64::NAN, |(_, h)| h.value());
                row.push(format!("{value:.1}"));
            }
            t.push_row(&row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_extremes_and_steps() {
        let fig = run(&Params::default()).unwrap();
        let (lo, hi) = fig.extremes;
        assert!((lo.value() + 16.0).abs() < 4.0, "min = {lo}");
        assert!((hi.value() - 64.0).abs() < 6.0, "max = {hi}");
        assert!((fig.breakdown.direct_step.value() - 15.0).abs() < 1.0);
        assert!((fig.breakdown.diagonal_step.value() - 5.0).abs() < 0.8);
    }

    #[test]
    fn exact_backend_and_coarse_polygon_agree_on_the_steps() {
        // The accuracy ablation: the elliptic-integral backend and a
        // deliberately coarse polygon both land on the paper's steps.
        let exact = run(&Params {
            exact: true,
            ..Params::default()
        })
        .unwrap();
        let coarse = run(&Params {
            segments: 32,
            ..Params::default()
        })
        .unwrap();
        for fig in [&exact, &coarse] {
            assert!((fig.breakdown.direct_step.value() - 15.0).abs() < 1.0);
            assert!((fig.breakdown.diagonal_step.value() - 5.0).abs() < 0.8);
        }
    }

    #[test]
    fn has_25_classes() {
        let fig = run(&Params::default()).unwrap();
        assert_eq!(fig.classes.len(), 25);
    }

    #[test]
    fn class_values_increase_along_both_axes() {
        let fig = run(&Params::default()).unwrap();
        let value = |d: u8, g: u8| {
            fig.classes
                .iter()
                .find(|(c, _)| c.direct_ones == d && c.diagonal_ones == g)
                .unwrap()
                .1
                .value()
        };
        for d in 0..4u8 {
            for g in 0..=4u8 {
                assert!(value(d + 1, g) > value(d, g));
            }
        }
        for d in 0..=4u8 {
            for g in 0..4u8 {
                assert!(value(d, g + 1) > value(d, g));
            }
        }
    }

    #[test]
    fn table_is_a_5x5_matrix() {
        let fig = run(&Params::default()).unwrap();
        let t = fig.to_table();
        assert_eq!(t.row_count(), 5);
        let md = t.to_markdown();
        assert!(md.contains("direct"));
    }

    #[test]
    fn tighter_pitch_widens_the_range() {
        let near = run(&Params {
            pitch: Nanometer::new(82.5),
            ..Params::default()
        })
        .unwrap();
        let far = run(&Params::default()).unwrap();
        let range = |f: &Fig4a| f.extremes.1.value() - f.extremes.0.value();
        assert!(range(&near) > range(&far));
    }
}
