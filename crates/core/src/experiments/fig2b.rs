//! Fig. 2b — device-size dependence of `Hz_s_intra`: measured (with
//! error bars) vs the calibrated model curve.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_mtj::presets;
use mramsim_units::Nanometer;
use mramsim_vlab::{intra_field_study, IntraFieldPoint, RhLoopTester, Wafer, WaferSpec};
use rand::SeedableRng;

/// Parameters of the Fig. 2b experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Devices measured per size group (statistics for the error bars).
    pub devices_per_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// eCD grid (nm) for the simulated curve.
    pub sim_grid: Vec<f64>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            devices_per_size: 8,
            seed: 2020,
            sim_grid: (1..=18).map(|i| 10.0 * f64::from(i)).collect(),
        }
    }
}

/// The regenerated Fig. 2b data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2b {
    /// Per-size measurement statistics (the error-bar points).
    pub measured: Vec<IntraFieldPoint>,
    /// The model curve `(eCD [nm], Hz_s_intra [Oe])`.
    pub simulated: Vec<(f64, f64)>,
}

/// Runs the experiment: fabricate the wafer, measure every device's R-H
/// loop, extract `Hz_s_intra`, and overlay the model curve.
///
/// # Errors
///
/// Propagates fabrication/measurement failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig2b, CoreError> {
    if params.devices_per_size == 0 || params.sim_grid.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "devices_per_size/sim_grid",
            message: "need at least one device per size and one grid point".into(),
        });
    }
    let nominal = presets::imec_like(Nanometer::new(55.0))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let wafer = Wafer::fabricate(
        &nominal,
        &WaferSpec::paper_sizes(params.devices_per_size),
        &mut rng,
    )?;
    let measured = intra_field_study(&wafer, &RhLoopTester::paper_setup(), &mut rng)?;

    let stack = nominal.stack();
    let mut simulated = Vec::with_capacity(params.sim_grid.len());
    for &ecd in &params.sim_grid {
        let h = stack.intra_hz_at_fl_center(Nanometer::new(ecd))?;
        simulated.push((ecd, h.value()));
    }
    Ok(Fig2b {
        measured,
        simulated,
    })
}

impl Fig2b {
    /// Renders the measured statistics and the model values as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig2b: Hz_s_intra vs eCD (measured vs simulated)",
            &[
                "nominal_ecd_nm",
                "measured_mean_oe",
                "measured_std_oe",
                "model_oe",
            ],
        );
        for p in &self.measured {
            let model = self
                .simulated
                .iter()
                .min_by(|a, b| {
                    (a.0 - p.nominal_ecd.value())
                        .abs()
                        .partial_cmp(&(b.0 - p.nominal_ecd.value()).abs())
                        .unwrap()
                })
                .map_or(f64::NAN, |&(_, h)| h);
            t.push_row(&[
                format!("{:.0}", p.nominal_ecd.value()),
                format!("{:.1}", p.hz_s_intra.mean),
                format!("{:.1}", p.hz_s_intra.std_dev),
                format!("{model:.1}"),
            ]);
        }
        t
    }

    /// Measured points and model curve as an ASCII chart.
    #[must_use]
    pub fn chart(&self) -> String {
        let measured = Series::new(
            "measured (mean)",
            self.measured
                .iter()
                .map(|p| (p.nominal_ecd.value(), p.hz_s_intra.mean))
                .collect(),
        );
        let model = Series::new("simulated", self.simulated.clone());
        ascii_chart(&[model, measured], 64, 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            // 8 devices per size keeps the mean within the error-bar
            // tolerance for any well-behaved RNG stream (4 was tuned
            // to one specific upstream seed).
            devices_per_size: 8,
            seed: 7,
            sim_grid: vec![20.0, 35.0, 55.0, 90.0, 130.0, 175.0],
        }
    }

    #[test]
    fn model_curve_grows_steeply_below_100nm() {
        let fig = run(&small_params()).unwrap();
        let h = |ecd: f64| {
            fig.simulated
                .iter()
                .find(|&&(e, _)| e == ecd)
                .map(|&(_, v)| v)
                .unwrap()
        };
        // Monotone in magnitude and all negative.
        assert!(h(20.0) < h(35.0) && h(35.0) < h(55.0) && h(55.0) < h(90.0));
        assert!(h(175.0) < 0.0);
        // Steeper below 100 nm: slope(35→55) > slope(90→175) per nm.
        let steep = (h(35.0) - h(55.0)).abs() / 20.0;
        let shallow = (h(90.0) - h(175.0)).abs() / 85.0;
        assert!(steep > 2.0 * shallow, "steep {steep} vs shallow {shallow}");
    }

    #[test]
    fn measured_points_track_the_model_within_error_bars() {
        let fig = run(&small_params()).unwrap();
        for p in &fig.measured {
            let model = fig
                .simulated
                .iter()
                .find(|&&(e, _)| (e - p.nominal_ecd.value()).abs() < 1.0)
                .map(|&(_, v)| v)
                .unwrap();
            let tolerance =
                3.0 * p.hz_s_intra.std_dev.max(30.0) / (p.ecd.count as f64).sqrt() + 15.0;
            assert!(
                (p.hz_s_intra.mean - model).abs() < tolerance.max(60.0),
                "eCD {}: measured {} vs model {model}",
                p.nominal_ecd.value(),
                p.hz_s_intra.mean
            );
        }
    }

    #[test]
    fn error_bars_are_present() {
        let fig = run(&small_params()).unwrap();
        assert!(fig.measured.iter().all(|p| p.hz_s_intra.std_dev > 0.0));
    }

    #[test]
    fn table_and_chart_render() {
        let fig = run(&small_params()).unwrap();
        assert_eq!(fig.to_table().row_count(), 6);
        assert!(fig.chart().contains("simulated"));
    }

    #[test]
    fn degenerate_params_rejected() {
        assert!(run(&Params {
            devices_per_size: 0,
            ..small_params()
        })
        .is_err());
    }
}
