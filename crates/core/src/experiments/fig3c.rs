//! Fig. 3c — the spatial stray-field map of HL + RL around a device.

use crate::report::Table;
use crate::CoreError;
use mramsim_magnetics::field_map::PlaneMap;
use mramsim_magnetics::SourceSet;
use mramsim_mtj::presets;
use mramsim_units::constants::OERSTED_PER_AMPERE_PER_METER;
use mramsim_units::Nanometer;

/// Parameters of the Fig. 3c experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size (paper: eCD = 55 nm).
    pub ecd: Nanometer,
    /// Half-width of the sampled window as a multiple of the eCD.
    pub window_factor: f64,
    /// Grid resolution per axis.
    pub grid: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(55.0),
            window_factor: 1.6,
            grid: 33,
        }
    }
}

/// The regenerated Fig. 3c data: the intra-cell field sampled on the FL
/// plane and along the device axis.
#[derive(Debug)]
pub struct Fig3c {
    /// Field map over the FL plane (`z = 0`), fields in A/m.
    pub fl_plane: PlaneMap,
    /// On-axis vertical profile `(z [nm], Hz [Oe])`.
    pub axis_profile: Vec<(f64, f64)>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates loop-construction failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig3c, CoreError> {
    if params.grid < 3 || !(params.window_factor > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "grid/window_factor",
            message: format!(
                "grid {} must be >= 3 and window factor {} positive",
                params.grid, params.window_factor
            ),
        });
    }
    let device = presets::imec_like(params.ecd)?;
    // Monomorphic SourceKind loops: the plane map and axis profile run
    // through the batched (and, for large grids, pooled) evaluation path.
    let sources: SourceSet = device
        .stack()
        .fixed_kinds_at(params.ecd, 0.0, 0.0)?
        .into_iter()
        .collect();

    let half = params.window_factor * params.ecd.to_meter().value();
    let fl_plane = PlaneMap::sample(
        &sources,
        (-half, half),
        (-half, half),
        0.0,
        params.grid,
        params.grid,
    )
    .map_err(|e| CoreError::Device(e.into()))?;

    let axis_positions: Vec<mramsim_numerics::Vec3> = (0..params.grid)
        .map(|i| {
            let z = -half + 2.0 * half * i as f64 / (params.grid - 1) as f64;
            mramsim_numerics::Vec3::new(0.0, 0.0, z)
        })
        .collect();
    let axis_fields = mramsim_magnetics::field_map::h_field_at_points(&sources, &axis_positions);
    let axis_profile = axis_positions
        .iter()
        .zip(&axis_fields)
        .map(|(p, h)| (p.z * 1e9, h.z * OERSTED_PER_AMPERE_PER_METER))
        .collect();

    Ok(Fig3c {
        fl_plane,
        axis_profile,
    })
}

impl Fig3c {
    /// Summary table: field extremes over the FL plane and at the centre.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let (lo, hi) = self.fl_plane.hz_range();
        let nx = self.fl_plane.nx();
        let ny = self.fl_plane.ny();
        let center = self.fl_plane.at(nx / 2, ny / 2);
        let mut t = Table::new(
            "fig3c: intra-cell field map summary",
            &["quantity", "value"],
        );
        t.push_row(&[
            "Hz at FL centre (Oe)".into(),
            format!("{:.1}", center.z * OERSTED_PER_AMPERE_PER_METER),
        ]);
        t.push_row(&[
            "min Hz over plane (Oe)".into(),
            format!("{:.1}", lo * OERSTED_PER_AMPERE_PER_METER),
        ]);
        t.push_row(&[
            "max Hz over plane (Oe)".into(),
            format!("{:.1}", hi * OERSTED_PER_AMPERE_PER_METER),
        ]);
        t.push_row(&["grid".into(), format!("{nx}x{ny}")]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_field_matches_the_device_model() {
        let params = Params::default();
        let fig = run(&params).unwrap();
        let device = presets::imec_like(params.ecd).unwrap();
        let expected = device.intra_hz_at_fl_center().unwrap().value();
        let nx = fig.fl_plane.nx();
        let center = fig.fl_plane.at(nx / 2, nx / 2).z * OERSTED_PER_AMPERE_PER_METER;
        assert!(
            (center - expected).abs() < 1.0,
            "map centre {center} vs model {expected}"
        );
    }

    #[test]
    fn field_decays_away_from_the_device() {
        let fig = run(&Params::default()).unwrap();
        let n = fig.fl_plane.nx();
        let center = fig.fl_plane.at(n / 2, n / 2).z.abs();
        let corner = fig.fl_plane.at(0, 0).z.abs();
        assert!(corner < 0.3 * center, "corner {corner} vs center {center}");
    }

    #[test]
    fn axis_profile_peaks_below_the_fl() {
        // The fixed layers live at negative z, so |Hz| on the axis is
        // larger below z = 0 than above.
        let fig = run(&Params::default()).unwrap();
        let below: f64 = fig
            .axis_profile
            .iter()
            .filter(|(z, _)| *z < -2.0)
            .map(|(_, h)| h.abs())
            .fold(0.0, f64::max);
        let above: f64 = fig
            .axis_profile
            .iter()
            .filter(|(z, _)| *z > 2.0)
            .map(|(_, h)| h.abs())
            .fold(0.0, f64::max);
        assert!(below > above);
    }

    #[test]
    fn table_renders() {
        let fig = run(&Params::default()).unwrap();
        let md = fig.to_table().to_markdown();
        assert!(md.contains("FL centre"));
    }

    #[test]
    fn bad_grid_rejected() {
        assert!(run(&Params {
            grid: 2,
            ..Params::default()
        })
        .is_err());
    }
}
