//! Fig. 4b — the coupling factor Ψ vs pitch for several device sizes.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_array::{max_density_pitch, psi_vs_pitch, PsiPoint};
use mramsim_mtj::presets;
use mramsim_units::Nanometer;

/// Parameters of the Fig. 4b experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device sizes (paper: 20, 35, 55 nm).
    pub ecds: Vec<f64>,
    /// Upper pitch bound (paper: 200 nm, the Samsung/Intel node).
    pub max_pitch: f64,
    /// Number of pitch samples per curve.
    pub points: usize,
    /// The Ψ threshold to solve for (paper: 2 %).
    pub psi_threshold: f64,
    /// Biot–Savart segments per loop (speed/accuracy ablation knob).
    pub segments: usize,
    /// Use the exact elliptic-integral loop backend instead of the
    /// polygonal discretisation.
    pub exact: bool,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecds: vec![20.0, 35.0, 55.0],
            max_pitch: 200.0,
            points: 24,
            psi_threshold: 0.02,
            segments: mramsim_magnetics::DEFAULT_SEGMENTS,
            exact: false,
        }
    }
}

/// One Ψ-vs-pitch curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PsiCurve {
    /// Device size.
    pub ecd: Nanometer,
    /// Sweep points from 1.5×eCD to the max pitch.
    pub points: Vec<PsiPoint>,
    /// The smallest pitch with Ψ at or below the threshold, when it
    /// exists inside the sweep window.
    pub threshold_pitch: Option<Nanometer>,
}

/// The regenerated Fig. 4b data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4b {
    /// One curve per device size.
    pub curves: Vec<PsiCurve>,
    /// The threshold used.
    pub psi_threshold: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates analyzer failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig4b, CoreError> {
    if params.ecds.is_empty() || params.points < 2 {
        return Err(CoreError::InvalidParameter {
            name: "ecds/points",
            message: "need at least one size and two pitch samples".into(),
        });
    }
    let hc = presets::MEASURED_HC;
    let mut curves = Vec::with_capacity(params.ecds.len());
    for &ecd_nm in &params.ecds {
        let ecd = Nanometer::new(ecd_nm);
        let device = presets::imec_like_with(ecd, params.segments, params.exact)?;
        // Paper: minimum pitch 1.5×eCD [7], maximum 200 nm [4, 20].
        let lo = 1.5 * ecd_nm;
        let pitches: Vec<Nanometer> = (0..params.points)
            .map(|i| {
                let t = i as f64 / (params.points - 1) as f64;
                Nanometer::new(lo + (params.max_pitch - lo) * t)
            })
            .collect();
        let points = psi_vs_pitch(&device, &pitches, hc)?;
        let threshold_pitch = max_density_pitch(
            &device,
            hc,
            params.psi_threshold,
            (Nanometer::new(lo), Nanometer::new(params.max_pitch)),
        )
        .ok();
        curves.push(PsiCurve {
            ecd,
            points,
            threshold_pitch,
        });
    }
    Ok(Fig4b {
        curves,
        psi_threshold: params.psi_threshold,
    })
}

impl Fig4b {
    /// All sweep points as a long-format table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig4b: psi vs pitch",
            &["ecd_nm", "pitch_nm", "psi_percent"],
        );
        for curve in &self.curves {
            for p in &curve.points {
                t.push_row(&[
                    format!("{:.0}", curve.ecd.value()),
                    format!("{:.1}", p.pitch.value()),
                    format!("{:.3}", 100.0 * p.psi),
                ]);
            }
        }
        t
    }

    /// The design-rule summary (threshold pitches), one row per size.
    #[must_use]
    pub fn threshold_table(&self) -> Table {
        let mut t = Table::new(
            "fig4b: pitch at the psi threshold",
            &["ecd_nm", "threshold_pitch_nm", "pitch_over_ecd"],
        );
        for curve in &self.curves {
            match curve.threshold_pitch {
                Some(p) => t.push_row(&[
                    format!("{:.0}", curve.ecd.value()),
                    format!("{:.1}", p.value()),
                    format!("{:.2}", p.value() / curve.ecd.value()),
                ]),
                None => t.push_row(&[
                    format!("{:.0}", curve.ecd.value()),
                    "unreachable".into(),
                    "-".into(),
                ]),
            }
        }
        t
    }

    /// All curves as an ASCII chart (Ψ in % vs pitch in nm).
    #[must_use]
    pub fn chart(&self) -> String {
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|c| {
                Series::new(
                    &format!("eCD={}nm", c.ecd.value()),
                    c.points
                        .iter()
                        .map(|p| (p.pitch.value(), 100.0 * p.psi))
                        .collect(),
                )
            })
            .collect();
        ascii_chart(&series, 64, 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            points: 10,
            ..Params::default()
        }
    }

    #[test]
    fn psi_decays_monotonically_with_pitch() {
        let fig = run(&small()).unwrap();
        for curve in &fig.curves {
            for w in curve.points.windows(2) {
                assert!(w[0].psi > w[1].psi, "eCD {}", curve.ecd.value());
            }
        }
    }

    #[test]
    fn psi_is_negligible_at_200nm_for_all_sizes() {
        // Paper: "Ψ ≈ 0 % at pitch = 200 nm for all three device sizes".
        let fig = run(&small()).unwrap();
        for curve in &fig.curves {
            let last = curve.points.last().unwrap();
            assert!(last.psi < 0.006, "eCD {}: {}", curve.ecd.value(), last.psi);
        }
    }

    #[test]
    fn threshold_pitch_is_near_2x_ecd_for_35nm() {
        // Paper conclusion: Ψ = 2 % at ≈ 2×eCD ("for a device with
        // eCD = 35 nm, this corresponds to pitch = ~80 nm" per Fig. 4b).
        let fig = run(&small()).unwrap();
        let curve = fig
            .curves
            .iter()
            .find(|c| c.ecd.value() == 35.0)
            .expect("35 nm curve");
        let p = curve.threshold_pitch.expect("threshold reachable").value();
        assert!(p > 60.0 && p < 95.0, "threshold pitch {p}");
    }

    #[test]
    fn bigger_devices_need_relatively_less_shrink() {
        // At fixed pitch, bigger devices couple harder; at the threshold
        // the pitch normalised by eCD decreases with size.
        let fig = run(&small()).unwrap();
        let ratios: Vec<f64> = fig
            .curves
            .iter()
            .map(|c| c.threshold_pitch.unwrap().value() / c.ecd.value())
            .collect();
        assert!(ratios[0] > ratios[2], "ratios: {ratios:?}");
    }

    #[test]
    fn tables_and_chart_render() {
        let fig = run(&small()).unwrap();
        assert_eq!(fig.to_table().row_count(), 30);
        assert_eq!(fig.threshold_table().row_count(), 3);
        assert!(fig.chart().contains("eCD=55nm"));
    }
}
