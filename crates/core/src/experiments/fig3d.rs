//! Fig. 3d — radial distribution of `Hz_s_intra` across the FL for
//! several device sizes.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_mtj::presets;
use mramsim_numerics::Vec3;
use mramsim_units::Nanometer;

/// Parameters of the Fig. 3d experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device sizes to profile (paper: 20, 35, 55, 90 nm).
    pub ecds: Vec<f64>,
    /// Samples across each device's diameter.
    pub samples: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecds: vec![20.0, 35.0, 55.0, 90.0],
            samples: 41,
        }
    }
}

/// One radial profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialProfile {
    /// Device size.
    pub ecd: Nanometer,
    /// `(radial position [nm], Hz [Oe])`, spanning ±0.8 of the radius
    /// (the paper samples inside the FL).
    pub points: Vec<(f64, f64)>,
}

/// The regenerated Fig. 3d data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3d {
    /// One profile per requested size.
    pub profiles: Vec<RadialProfile>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates loop-construction failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig3d, CoreError> {
    if params.ecds.is_empty() || params.samples < 3 {
        return Err(CoreError::InvalidParameter {
            name: "ecds/samples",
            message: "need at least one size and three samples".into(),
        });
    }
    let stack = presets::imec_like(Nanometer::new(55.0))?.stack().clone();
    let mut profiles = Vec::with_capacity(params.ecds.len());
    for &ecd_nm in &params.ecds {
        let ecd = Nanometer::new(ecd_nm);
        let rmax = 0.8 * ecd.to_meter().value() / 2.0;
        // One SourceSet of monomorphic loop kinds per size, evaluated
        // over the whole radial scan in a single batched pass instead of
        // rebuilding the fixed loops at every sample point.
        let sources: mramsim_magnetics::SourceSet =
            stack.fixed_kinds_at(ecd, 0.0, 0.0)?.into_iter().collect();
        let positions: Vec<Vec3> = (0..params.samples)
            .map(|i| {
                let t = i as f64 / (params.samples - 1) as f64;
                Vec3::new(-rmax + 2.0 * rmax * t, 0.0, 0.0)
            })
            .collect();
        let fields = mramsim_magnetics::field_map::h_field_at_points(&sources, &positions);
        let points = positions
            .iter()
            .zip(&fields)
            .map(|(p, h)| {
                (
                    p.x * 1e9,
                    mramsim_units::AmperePerMeter::new(h.z).to_oersted().value(),
                )
            })
            .collect();
        profiles.push(RadialProfile { ecd, points });
    }
    Ok(Fig3d { profiles })
}

impl Fig3d {
    /// Centre and edge values per size, as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "fig3d: Hz_s_intra radial profile",
            &["ecd_nm", "center_oe", "edge_oe(0.8R)"],
        );
        for p in &self.profiles {
            let center = p.points[p.points.len() / 2].1;
            let edge = p.points[0].1;
            t.push_row(&[
                format!("{:.0}", p.ecd.value()),
                format!("{center:.1}"),
                format!("{edge:.1}"),
            ]);
        }
        t
    }

    /// All profiles as an ASCII chart.
    #[must_use]
    pub fn chart(&self) -> String {
        let series: Vec<Series> = self
            .profiles
            .iter()
            .map(|p| Series::new(&format!("eCD={}nm", p.ecd.value()), p.points.clone()))
            .collect();
        ascii_chart(&series, 64, 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_values_order_by_size() {
        // Smaller device ⇒ more negative centre field (Fig. 2b/3d).
        let fig = run(&Params::default()).unwrap();
        let centers: Vec<f64> = fig
            .profiles
            .iter()
            .map(|p| p.points[p.points.len() / 2].1)
            .collect();
        for w in centers.windows(2) {
            assert!(w[0] < w[1], "ordering violated: {centers:?}");
        }
    }

    #[test]
    fn profiles_are_symmetric() {
        let fig = run(&Params::default()).unwrap();
        for p in &fig.profiles {
            let n = p.points.len();
            for i in 0..n / 2 {
                let (xl, hl) = p.points[i];
                let (xr, hr) = p.points[n - 1 - i];
                assert!((xl + xr).abs() < 1e-9);
                assert!(
                    (hl - hr).abs() < 1e-6 * hl.abs().max(1.0),
                    "asymmetry at ±{xl} nm"
                );
            }
        }
    }

    #[test]
    fn paper_sizes_show_weaker_edge_than_center() {
        // The paper's observation, valid at the small sizes it evaluates
        // (see EXPERIMENTS.md for the 55/90 nm discussion).
        let fig = run(&Params::default()).unwrap();
        for p in fig.profiles.iter().filter(|p| p.ecd.value() <= 35.0) {
            let center = p.points[p.points.len() / 2].1;
            let edge = p.points[0].1;
            assert!(
                center.abs() > edge.abs(),
                "eCD {}: center {center}, edge {edge}",
                p.ecd.value()
            );
        }
    }

    #[test]
    fn rendering_works() {
        let fig = run(&Params::default()).unwrap();
        assert_eq!(fig.to_table().row_count(), 4);
        assert!(fig.chart().contains("eCD=20nm"));
    }

    #[test]
    fn degenerate_params_rejected() {
        assert!(run(&Params {
            ecds: vec![],
            samples: 41
        })
        .is_err());
        assert!(run(&Params {
            ecds: vec![55.0],
            samples: 2
        })
        .is_err());
    }
}
