//! Fig. 6b — the worst-case thermal stability `ΔP(NP8=0)` vs
//! temperature, compared across array pitches.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_array::{CouplingAnalyzer, NeighborhoodPattern};
use mramsim_mtj::{presets, retention_time, MtjState};
use mramsim_units::{Celsius, Nanometer};

/// Parameters of the Fig. 6b experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size (paper: 35 nm).
    pub ecd: Nanometer,
    /// Pitch factors to compare (paper: 3×, 2×, 1.5×eCD).
    pub pitch_factors: Vec<f64>,
    /// Temperature sweep in °C.
    pub temps_c: Vec<f64>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(35.0),
            pitch_factors: vec![3.0, 2.0, 1.5],
            temps_c: (0..=15).map(|i| 10.0 * f64::from(i)).collect(),
        }
    }
}

/// One worst-case curve.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseCurve {
    /// Pitch factor (×eCD).
    pub pitch_factor: f64,
    /// `(temp [°C], ΔP(NP8=0))` points.
    pub points: Vec<(f64, f64)>,
}

/// The regenerated Fig. 6b data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6b {
    /// One curve per pitch factor.
    pub curves: Vec<WorstCaseCurve>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates device/array failures and invalid parameters.
pub fn run(params: &Params) -> Result<Fig6b, CoreError> {
    if params.temps_c.is_empty() || params.pitch_factors.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "temps_c/pitch_factors",
            message: "need at least one temperature and one pitch factor".into(),
        });
    }
    let device = presets::imec_like(params.ecd)?;
    let mut curves = Vec::with_capacity(params.pitch_factors.len());
    for &factor in &params.pitch_factors {
        let pitch = Nanometer::new(factor * params.ecd.value());
        let coupling = CouplingAnalyzer::new(device.clone(), pitch)?;
        let worst = coupling.total_hz(NeighborhoodPattern::ALL_P);
        let mut points = Vec::with_capacity(params.temps_c.len());
        for &c in &params.temps_c {
            let t = Celsius::new(c).to_kelvin();
            let delta = device.switching().delta(MtjState::Parallel, worst, t)?;
            points.push((c, delta));
        }
        curves.push(WorstCaseCurve {
            pitch_factor: factor,
            points,
        });
    }
    Ok(Fig6b { curves })
}

impl Fig6b {
    /// The sweep as a table (one column per pitch factor).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut columns = vec!["temp_c".to_owned()];
        for c in &self.curves {
            columns.push(format!("deltaP_np0 @ {}xeCD", c.pitch_factor));
        }
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut t = Table::new("fig6b: worst-case deltaP(NP8=0) vs temperature", &col_refs);
        let n = self.curves[0].points.len();
        for i in 0..n {
            let mut row = vec![format!("{:.0}", self.curves[0].points[i].0)];
            for c in &self.curves {
                row.push(format!("{:.2}", c.points[i].1));
            }
            t.push_row(&row);
        }
        t
    }

    /// All curves as an ASCII chart.
    #[must_use]
    pub fn chart(&self) -> String {
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|c| Series::new(&format!("pitch={}xeCD", c.pitch_factor), c.points.clone()))
            .collect();
        ascii_chart(&series, 64, 18)
    }

    /// Worst-case retention time (years) at the given temperature, per
    /// pitch factor — the engineering consequence of the Δ degradation.
    #[must_use]
    pub fn retention_years_at(&self, temp_c: f64) -> Vec<(f64, f64)> {
        self.curves
            .iter()
            .map(|c| {
                let delta = c
                    .points
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - temp_c)
                            .abs()
                            .partial_cmp(&(b.0 - temp_c).abs())
                            .unwrap()
                    })
                    .map_or(f64::NAN, |p| p.1);
                (c.pitch_factor, retention_time(delta).to_years())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig6b {
        run(&Params::default()).unwrap()
    }

    #[test]
    fn denser_arrays_have_lower_worst_case_delta() {
        // "marginal degradation … when the array pitch goes down to
        // 1.5×eCD, in comparison to pitch = 2×eCD".
        let f = fig();
        for i in 0..f.curves[0].points.len() {
            let d3 = f.curves[0].points[i].1;
            let d2 = f.curves[1].points[i].1;
            let d15 = f.curves[2].points[i].1;
            assert!(d3 > d2 && d2 > d15);
        }
    }

    #[test]
    fn degradation_is_marginal_between_2x_and_1_5x() {
        let f = fig();
        let at25 = |curve: &WorstCaseCurve| {
            curve
                .points
                .iter()
                .min_by(|a, b| (a.0 - 25.0).abs().partial_cmp(&(b.0 - 25.0).abs()).unwrap())
                .unwrap()
                .1
        };
        let d2 = at25(&f.curves[1]);
        let d15 = at25(&f.curves[2]);
        let rel = (d2 - d15) / d2;
        assert!(rel > 0.0 && rel < 0.06, "relative degradation = {rel}");
    }

    #[test]
    fn curves_fall_with_temperature() {
        let f = fig();
        for c in &f.curves {
            for w in c.points.windows(2) {
                assert!(w[1].1 < w[0].1);
            }
        }
    }

    #[test]
    fn retention_collapses_at_high_temperature() {
        let f = fig();
        let cold = f.retention_years_at(0.0);
        let hot = f.retention_years_at(150.0);
        for ((_, yc), (_, yh)) in cold.iter().zip(&hot) {
            assert!(yc > yh);
        }
        // At 150 °C even the sparse array falls far below 10 years.
        assert!(hot[0].1 < 1.0, "retention at 150C: {} years", hot[0].1);
    }

    #[test]
    fn rendering_works() {
        let f = fig();
        assert_eq!(f.to_table().row_count(), 16);
        assert!(f.chart().contains("pitch=1.5xeCD"));
    }
}
