//! Fig. 2a — a measured R-H hysteresis loop of a representative device.

use crate::report::{ascii_chart, Series, Table};
use crate::CoreError;
use mramsim_mtj::presets;
use mramsim_units::Nanometer;
use mramsim_vlab::{analyze_loop, LoopExtraction, RhLoopTester};
use rand::SeedableRng;

/// Parameters of the Fig. 2a experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Device size; the paper's representative device has eCD = 55 nm.
    pub ecd: Nanometer,
    /// RNG seed for the stochastic switching.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            ecd: Nanometer::new(55.0),
            seed: 2020,
        }
    }
}

/// The regenerated Fig. 2a data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2a {
    /// `(H_applied [Oe], R [Ω])` in measurement order.
    pub loop_points: Vec<(f64, f64)>,
    /// The §III extraction from the same loop.
    pub extraction: LoopExtraction,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates measurement and extraction failures.
pub fn run(params: &Params) -> Result<Fig2a, CoreError> {
    let device = presets::imec_like(params.ecd)?;
    let tester = RhLoopTester::paper_setup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let rh = tester.run(&device, &mut rng)?;
    let extraction = analyze_loop(&rh, device.electrical().ra())?;
    Ok(Fig2a {
        loop_points: rh
            .points()
            .iter()
            .map(|p| (p.h_applied.value(), p.resistance.value()))
            .collect(),
        extraction,
    })
}

impl Fig2a {
    /// The extracted §III scalars as a table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new("fig2a: R-H loop extraction", &["quantity", "value", "unit"]);
        let x = &self.extraction;
        t.push_row(&[
            "Hsw_p".into(),
            format!("{:.1}", x.hsw_p.value()),
            "Oe".into(),
        ]);
        t.push_row(&[
            "Hsw_n".into(),
            format!("{:.1}", x.hsw_n.value()),
            "Oe".into(),
        ]);
        t.push_row(&["Hc".into(), format!("{:.1}", x.hc.value()), "Oe".into()]);
        t.push_row(&[
            "Hoffset".into(),
            format!("{:.1}", x.h_offset.value()),
            "Oe".into(),
        ]);
        t.push_row(&[
            "Hz_s_intra".into(),
            format!("{:.1}", x.hz_s_intra.value()),
            "Oe".into(),
        ]);
        t.push_row(&["RP".into(), format!("{:.0}", x.rp.value()), "Ohm".into()]);
        t.push_row(&["RAP".into(), format!("{:.0}", x.rap.value()), "Ohm".into()]);
        t.push_row(&["eCD".into(), format!("{:.1}", x.ecd.value()), "nm".into()]);
        t
    }

    /// The loop itself as an ASCII chart (resistance vs field).
    #[must_use]
    pub fn chart(&self) -> String {
        ascii_chart(&[Series::new("R(H)", self.loop_points.clone())], 64, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_shape_matches_fig2a() {
        let fig = run(&Params::default()).unwrap();
        assert_eq!(fig.loop_points.len(), 1000);
        // Offset to the positive side, eCD recovered.
        assert!(fig.extraction.h_offset.value() > 0.0);
        assert!((fig.extraction.ecd.value() - 55.0).abs() < 2.0);
        // Hc in the paper's 2.2 kOe ballpark.
        assert!((fig.extraction.hc.value() - 2200.0).abs() < 250.0);
    }

    #[test]
    fn table_lists_all_extracted_quantities() {
        let fig = run(&Params::default()).unwrap();
        let md = fig.to_table().to_markdown();
        for q in [
            "Hsw_p",
            "Hsw_n",
            "Hc",
            "Hoffset",
            "Hz_s_intra",
            "RP",
            "RAP",
            "eCD",
        ] {
            assert!(md.contains(q), "missing {q}");
        }
    }

    #[test]
    fn chart_renders_two_branches() {
        let fig = run(&Params::default()).unwrap();
        let chart = fig.chart();
        assert!(chart.contains('*'));
        assert!(chart.contains("R(H)"));
    }
}
