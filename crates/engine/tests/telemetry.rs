//! Observability integration: the telemetry pipeline against *real*
//! sweeps. Two properties matter — the JSONL run log round-trips with
//! every line parseable and the per-job accounting consistent, and
//! telemetry is strictly write-only: enabling it must not move a single
//! byte of scientific output or a single cache key.

use mramsim_engine::cache::ResultCache;
use mramsim_engine::{Engine, ParamSet, SweepPlan};
use mramsim_telemetry as telemetry;
use mramsim_telemetry::{Clock, Fanout, Json, JsonlRecorder, MetricsRecorder, TelemetryLog};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Tests in this file install the process-global recorder; they must
/// not overlap with each other (the harness runs them on threads of
/// one process).
fn install_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "mramsim-telemetry-{name}-{}-{nanos}",
        std::process::id()
    ))
}

fn array_wer_plan() -> SweepPlan {
    SweepPlan::new("array-wer")
        .fix("rows", 4.0)
        .fix("cols", 4.0)
        .fix("trajectories", 16.0)
        .fix("pulse_ns", 3.0)
        .axis("seed", vec![1.0, 2.0, 3.0, 4.0])
}

#[test]
fn jsonl_log_of_a_real_array_wer_sweep_round_trips() {
    let _serial = install_lock();
    let path = scratch_path("roundtrip").with_extension("telemetry");
    let metrics = Arc::new(MetricsRecorder::new());
    let sink = Arc::new(JsonlRecorder::create(&path, Clock::system()).expect("create log"));
    let guard = telemetry::install(Arc::new(Fanout(vec![
        metrics.clone() as Arc<dyn telemetry::Recorder>,
        sink.clone(),
    ])));

    let engine = Engine::standard().with_workers(2);
    let plan = array_wer_plan();
    let outcome = engine.sweep(&plan).expect("sweep runs");
    sink.write_snapshot(&metrics.snapshot());
    drop(guard);
    assert_eq!(outcome.errors, 0, "array-wer jobs all succeed");

    // Every line of the file must parse — `load` is Err on any interior
    // malformation, so a successful load *is* the line-by-line check.
    let log = TelemetryLog::load(&path).expect("log parses");
    assert!(!log.truncated_tail, "file was closed cleanly");
    let metrics_snapshot = log.metrics.as_ref().expect("snapshot line present");

    let starts: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.name == "sweep.start")
        .collect();
    let jobs: Vec<_> = log.events.iter().filter(|e| e.name == "job.done").collect();
    let ends: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.name == "sweep.end")
        .collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(ends.len(), 1);
    assert_eq!(jobs.len(), plan.len(), "one job.done event per grid point");
    assert_eq!(starts[0].text("scenario"), Some("array-wer"));
    assert_eq!(starts[0].u64("jobs"), Some(plan.len() as u64));

    // Per-job accounting: all four jobs computed fresh and their summed
    // durations can never exceed the workers' aggregate wall budget.
    let mut busy = Duration::ZERO;
    for job in &jobs {
        assert_eq!(job.text("source"), Some("computed"));
        let d = job.u64("duration_ns").expect("duration recorded");
        assert!(d > 0, "computed jobs take measurable time");
        busy += Duration::from_nanos(d);
    }
    let budget = outcome.duration * engine.workers() as u32;
    assert!(
        busy <= budget + budget / 10,
        "job durations {busy:?} exceed wall x workers {budget:?} by >10%"
    );
    // …and a compute-bound sweep keeps the pool meaningfully busy (a
    // deliberately loose floor so a loaded CI machine cannot flake it).
    assert!(
        busy * 2 >= outcome.duration,
        "jobs {busy:?} cover under half of one worker's wall {:?}",
        outcome.duration
    );

    // The snapshot agrees with the event stream: one WER estimate per
    // array cell (4×4) per job, 16 trajectories behind each.
    let cells = 16 * plan.len() as u64;
    assert_eq!(metrics_snapshot.counter("llgs.wer_estimates"), cells);
    assert_eq!(metrics_snapshot.counter("llgs.trajectories"), 16 * cells);
    assert!(metrics_snapshot.counter("llgs.steps") > 0);
    assert_eq!(
        metrics_snapshot.counter("cache.memory_misses"),
        plan.len() as u64
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn span_tree_of_a_real_sweep_nests_every_job_under_the_root() {
    let _serial = install_lock();
    let path = scratch_path("spans").with_extension("telemetry");
    let sink = Arc::new(JsonlRecorder::create(&path, Clock::system()).expect("create log"));
    let guard = telemetry::install(sink as Arc<dyn telemetry::Recorder>);
    let engine = Engine::standard().with_workers(3);
    let plan = array_wer_plan();
    let outcome = engine.sweep(&plan).expect("sweep runs");
    drop(guard);
    assert_eq!(outcome.errors, 0);

    let log = TelemetryLog::load(&path).expect("log parses");
    let tree = log.span_tree();
    tree.check()
        .expect("begin/end pairing and parent/child nesting are sound");

    // Exactly one sweep root; everything hangs off it.
    let sweep_roots: Vec<_> = tree
        .roots
        .iter()
        .map(|&r| &tree.spans[r])
        .filter(|s| s.name == "sweep")
        .collect();
    assert_eq!(sweep_roots.len(), 1, "one sweep root span");
    let root = sweep_roots[0];
    assert!(root.end_ns.is_some(), "the sweep span closed");

    // One job span per grid point, each a direct child of the root,
    // each on a real (nonzero) worker lane.
    let jobs: Vec<_> = tree.spans.iter().filter(|s| s.name == "job").collect();
    assert_eq!(jobs.len(), plan.len(), "one job span per grid point");
    for job in &jobs {
        assert_eq!(
            job.parent, root.id,
            "job span {} must nest under the sweep root even when stolen across workers",
            job.id
        );
        assert!(job.lane > 0, "job spans carry their worker lane");
    }

    // Each fresh compute nests under a job; the Monte-Carlo layers
    // below (campaign → ensembles) are present and parented.
    let parent_name = |id: u64| {
        tree.by_id(id)
            .map(|s| s.name.as_str())
            .unwrap_or("<missing>")
    };
    let compute: Vec<_> = tree.spans.iter().filter(|s| s.name == "compute").collect();
    assert_eq!(compute.len(), plan.len(), "all points computed fresh");
    for span in &compute {
        assert_eq!(parent_name(span.parent), "job");
    }
    let campaigns: Vec<_> = tree
        .spans
        .iter()
        .filter(|s| s.name == "wer.campaign")
        .collect();
    assert_eq!(campaigns.len(), plan.len(), "one campaign span per job");
    for span in &campaigns {
        assert_eq!(parent_name(span.parent), "compute");
    }
    // Estimator health rides along: one Wilson-interval event per cell.
    let health = log
        .events
        .iter()
        .filter(|e| e.name == "ensemble.health" && e.text("estimator") == Some("cell_wer"))
        .count();
    assert_eq!(health, 16 * plan.len(), "one health event per array cell");

    // The Chrome export of this real log is valid JSON with one
    // complete event per span.
    let rendered = telemetry::trace::chrome_trace(&log);
    let parsed = Json::parse(&rendered).expect("trace export is valid JSON");
    let complete = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    assert_eq!(complete, tree.spans.len());

    // A run diffed against itself can never trip the regression gate.
    let diff = telemetry::diff::RunDiff::compare(&log, &log);
    assert_eq!(diff.max_gated_regression_pct(), 0.0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn outputs_and_cache_keys_are_identical_with_telemetry_on_and_off() {
    // The determinism regression: for every worker count, the golden
    // CSV and the content addresses must be byte-identical whether the
    // run was profiled or not. Telemetry is write-only.
    let plan = SweepPlan::new("fig4b")
        .axis("pitch", vec![60.0, 90.0, 120.0])
        .axis("ecd", vec![25.0, 45.0]);

    let sweep_csv = |workers: usize, profiled: bool| {
        let _serial = install_lock();
        let guard = profiled.then(|| {
            telemetry::install(Arc::new(MetricsRecorder::new()) as Arc<dyn telemetry::Recorder>)
        });
        let outcome = Engine::standard()
            .with_workers(workers)
            .sweep(&plan)
            .expect("sweep runs");
        drop(guard);
        assert_eq!(outcome.errors, 0);
        outcome.summary_table().to_csv()
    };

    let golden = sweep_csv(1, false);
    for workers in [1, 3] {
        for profiled in [false, true] {
            assert_eq!(
                sweep_csv(workers, profiled),
                golden,
                "CSV moved at workers={workers} profiled={profiled}"
            );
        }
    }

    // Cache keys: resolve under an installed recorder and without one.
    let overrides = ParamSet::new().with("rows", 4.0).with("seed", 9.0);
    let bare = Engine::standard().resolve("array-wer", &overrides).unwrap();
    let profiled = {
        let _serial = install_lock();
        let _guard =
            telemetry::install(Arc::new(MetricsRecorder::new()) as Arc<dyn telemetry::Recorder>);
        Engine::standard().resolve("array-wer", &overrides).unwrap()
    };
    assert_eq!(bare.fingerprint(), profiled.fingerprint());
    assert_eq!(
        ResultCache::key("array-wer", &bare.fingerprint()),
        ResultCache::key("array-wer", &profiled.fingerprint()),
        "telemetry must never reach the content address"
    );
}

#[test]
fn disk_tier_metrics_follow_a_persisted_sweep() {
    let _serial = install_lock();
    let dir = scratch_path("disk");
    let plan = SweepPlan::new("fig4b").axis("pitch", vec![70.0, 110.0]);

    // First pass computes and persists; second (fresh engine, same
    // store) must serve every job from disk and say so in the metrics.
    let metrics = Arc::new(MetricsRecorder::new());
    let guard = telemetry::install(metrics.clone());
    Engine::standard()
        .with_disk_cache(&dir)
        .expect("store opens")
        .sweep(&plan)
        .expect("cold sweep");
    let cold = metrics.snapshot();
    assert_eq!(cold.counter("cache.disk_writes"), 2);
    assert!(cold.counter("cache.disk_bytes_written") > 0);

    let outcome = Engine::standard()
        .with_disk_cache(&dir)
        .expect("store reopens")
        .sweep(&plan)
        .expect("warm sweep");
    drop(guard);
    assert_eq!(outcome.disk_hits, 2);
    let warm = metrics.snapshot();
    assert_eq!(warm.counter("cache.disk_hits"), 2);
    assert_eq!(
        warm.counter("cache.disk_bytes_read"),
        warm.counter("cache.disk_bytes_written"),
        "round-trip reads exactly the bytes written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
