//! Observability integration: the telemetry pipeline against *real*
//! sweeps. Two properties matter — the JSONL run log round-trips with
//! every line parseable and the per-job accounting consistent, and
//! telemetry is strictly write-only: enabling it must not move a single
//! byte of scientific output or a single cache key.

use mramsim_engine::cache::ResultCache;
use mramsim_engine::{Engine, ParamSet, SweepPlan};
use mramsim_telemetry as telemetry;
use mramsim_telemetry::{Clock, Fanout, JsonlRecorder, MetricsRecorder, TelemetryLog};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Tests in this file install the process-global recorder; they must
/// not overlap with each other (the harness runs them on threads of
/// one process).
fn install_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scratch_path(name: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_nanos();
    std::env::temp_dir().join(format!(
        "mramsim-telemetry-{name}-{}-{nanos}",
        std::process::id()
    ))
}

fn array_wer_plan() -> SweepPlan {
    SweepPlan::new("array-wer")
        .fix("rows", 4.0)
        .fix("cols", 4.0)
        .fix("trajectories", 16.0)
        .fix("pulse_ns", 3.0)
        .axis("seed", vec![1.0, 2.0, 3.0, 4.0])
}

#[test]
fn jsonl_log_of_a_real_array_wer_sweep_round_trips() {
    let _serial = install_lock();
    let path = scratch_path("roundtrip").with_extension("telemetry");
    let metrics = Arc::new(MetricsRecorder::new());
    let sink = Arc::new(JsonlRecorder::create(&path, Clock::system()).expect("create log"));
    let guard = telemetry::install(Arc::new(Fanout(vec![
        metrics.clone() as Arc<dyn telemetry::Recorder>,
        sink.clone(),
    ])));

    let engine = Engine::standard().with_workers(2);
    let plan = array_wer_plan();
    let outcome = engine.sweep(&plan).expect("sweep runs");
    sink.write_snapshot(&metrics.snapshot());
    drop(guard);
    assert_eq!(outcome.errors, 0, "array-wer jobs all succeed");

    // Every line of the file must parse — `load` is Err on any interior
    // malformation, so a successful load *is* the line-by-line check.
    let log = TelemetryLog::load(&path).expect("log parses");
    assert!(!log.truncated_tail, "file was closed cleanly");
    let metrics_snapshot = log.metrics.as_ref().expect("snapshot line present");

    let starts: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.name == "sweep.start")
        .collect();
    let jobs: Vec<_> = log.events.iter().filter(|e| e.name == "job.done").collect();
    let ends: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.name == "sweep.end")
        .collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(ends.len(), 1);
    assert_eq!(jobs.len(), plan.len(), "one job.done event per grid point");
    assert_eq!(starts[0].text("scenario"), Some("array-wer"));
    assert_eq!(starts[0].u64("jobs"), Some(plan.len() as u64));

    // Per-job accounting: all four jobs computed fresh and their summed
    // durations can never exceed the workers' aggregate wall budget.
    let mut busy = Duration::ZERO;
    for job in &jobs {
        assert_eq!(job.text("source"), Some("computed"));
        let d = job.u64("duration_ns").expect("duration recorded");
        assert!(d > 0, "computed jobs take measurable time");
        busy += Duration::from_nanos(d);
    }
    let budget = outcome.duration * engine.workers() as u32;
    assert!(
        busy <= budget + budget / 10,
        "job durations {busy:?} exceed wall x workers {budget:?} by >10%"
    );
    // …and a compute-bound sweep keeps the pool meaningfully busy (a
    // deliberately loose floor so a loaded CI machine cannot flake it).
    assert!(
        busy * 2 >= outcome.duration,
        "jobs {busy:?} cover under half of one worker's wall {:?}",
        outcome.duration
    );

    // The snapshot agrees with the event stream: one WER estimate per
    // array cell (4×4) per job, 16 trajectories behind each.
    let cells = 16 * plan.len() as u64;
    assert_eq!(metrics_snapshot.counter("llgs.wer_estimates"), cells);
    assert_eq!(metrics_snapshot.counter("llgs.trajectories"), 16 * cells);
    assert!(metrics_snapshot.counter("llgs.steps") > 0);
    assert_eq!(
        metrics_snapshot.counter("cache.memory_misses"),
        plan.len() as u64
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn outputs_and_cache_keys_are_identical_with_telemetry_on_and_off() {
    // The determinism regression: for every worker count, the golden
    // CSV and the content addresses must be byte-identical whether the
    // run was profiled or not. Telemetry is write-only.
    let plan = SweepPlan::new("fig4b")
        .axis("pitch", vec![60.0, 90.0, 120.0])
        .axis("ecd", vec![25.0, 45.0]);

    let sweep_csv = |workers: usize, profiled: bool| {
        let _serial = install_lock();
        let guard = profiled.then(|| {
            telemetry::install(Arc::new(MetricsRecorder::new()) as Arc<dyn telemetry::Recorder>)
        });
        let outcome = Engine::standard()
            .with_workers(workers)
            .sweep(&plan)
            .expect("sweep runs");
        drop(guard);
        assert_eq!(outcome.errors, 0);
        outcome.summary_table().to_csv()
    };

    let golden = sweep_csv(1, false);
    for workers in [1, 3] {
        for profiled in [false, true] {
            assert_eq!(
                sweep_csv(workers, profiled),
                golden,
                "CSV moved at workers={workers} profiled={profiled}"
            );
        }
    }

    // Cache keys: resolve under an installed recorder and without one.
    let overrides = ParamSet::new().with("rows", 4.0).with("seed", 9.0);
    let bare = Engine::standard().resolve("array-wer", &overrides).unwrap();
    let profiled = {
        let _serial = install_lock();
        let _guard =
            telemetry::install(Arc::new(MetricsRecorder::new()) as Arc<dyn telemetry::Recorder>);
        Engine::standard().resolve("array-wer", &overrides).unwrap()
    };
    assert_eq!(bare.fingerprint(), profiled.fingerprint());
    assert_eq!(
        ResultCache::key("array-wer", &bare.fingerprint()),
        ResultCache::key("array-wer", &profiled.fingerprint()),
        "telemetry must never reach the content address"
    );
}

#[test]
fn disk_tier_metrics_follow_a_persisted_sweep() {
    let _serial = install_lock();
    let dir = scratch_path("disk");
    let plan = SweepPlan::new("fig4b").axis("pitch", vec![70.0, 110.0]);

    // First pass computes and persists; second (fresh engine, same
    // store) must serve every job from disk and say so in the metrics.
    let metrics = Arc::new(MetricsRecorder::new());
    let guard = telemetry::install(metrics.clone());
    Engine::standard()
        .with_disk_cache(&dir)
        .expect("store opens")
        .sweep(&plan)
        .expect("cold sweep");
    let cold = metrics.snapshot();
    assert_eq!(cold.counter("cache.disk_writes"), 2);
    assert!(cold.counter("cache.disk_bytes_written") > 0);

    let outcome = Engine::standard()
        .with_disk_cache(&dir)
        .expect("store reopens")
        .sweep(&plan)
        .expect("warm sweep");
    drop(guard);
    assert_eq!(outcome.disk_hits, 2);
    let warm = metrics.snapshot();
    assert_eq!(warm.counter("cache.disk_hits"), 2);
    assert_eq!(
        warm.counter("cache.disk_bytes_read"),
        warm.counter("cache.disk_bytes_written"),
        "round-trip reads exactly the bytes written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
