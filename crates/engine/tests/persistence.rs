//! The persistence layer end to end: cross-process disk-cache serving,
//! corruption fallback, bounded-memory eviction backed by disk, and
//! interrupted-then-resumed sweeps whose output is byte-identical to
//! an uninterrupted run.

use mramsim_engine::{Engine, SweepJournal, SweepOptions, SweepPlan};
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mramsim-persistence-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The workhorse 9-point grid: Ψ point mode, cheap enough for debug
/// tests, expensive enough that a recompute would be detectable.
fn nine_point_plan() -> SweepPlan {
    SweepPlan::new("fig4b").fix("ecd", 35.0).axis(
        "pitch",
        (0..9).map(|i| 60.0 + 20.0 * f64::from(i)).collect(),
    )
}

fn sweep_csv(engine: &Engine, plan: &SweepPlan) -> String {
    engine.sweep(plan).unwrap().summary_table().to_csv()
}

#[test]
fn a_fresh_engine_is_served_entirely_from_disk() {
    let dir = TempDir::new("cross-engine");
    let plan = nine_point_plan();

    // "Process" A computes and persists.
    let a = Engine::standard().with_disk_cache(&dir.0).unwrap();
    let cold = a.sweep(&plan).unwrap();
    assert_eq!((cold.errors, cold.cache_hits), (0, 0));
    assert_eq!(a.disk_stats().unwrap().writes, 9);

    // "Process" B (a fresh engine: empty memory tier) is served with
    // zero recomputation, and byte-identically.
    let b = Engine::standard().with_disk_cache(&dir.0).unwrap();
    let warm = b.sweep(&plan).unwrap();
    assert_eq!(
        warm.cache_hits, 9,
        "every point must come from a cache tier"
    );
    assert_eq!(warm.disk_hits, 9, "every point must come from *disk*");
    assert_eq!(
        warm.summary_table().to_csv(),
        cold.summary_table().to_csv(),
        "disk round-trip must be byte-exact"
    );

    // Memory promotion: the same engine re-sweeping no longer touches
    // disk.
    let hot = b.sweep(&plan).unwrap();
    assert_eq!((hot.cache_hits, hot.disk_hits), (9, 0));
}

#[test]
fn corrupt_disk_entries_fall_back_to_recompute() {
    let dir = TempDir::new("corrupt");
    let plan = nine_point_plan();
    let reference = {
        let engine = Engine::standard().with_disk_cache(&dir.0).unwrap();
        sweep_csv(&engine, &plan)
    };

    // Vandalise two entries: one truncated, one pure garbage.
    let entries: Vec<PathBuf> = fs::read_dir(dir.0.join("v1"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mse"))
        .collect();
    assert_eq!(entries.len(), 9);
    let text = fs::read_to_string(&entries[0]).unwrap();
    fs::write(&entries[0], &text[..text.len() / 2]).unwrap();
    fs::write(&entries[1], "total garbage\n").unwrap();

    let engine = Engine::standard().with_disk_cache(&dir.0).unwrap();
    let outcome = engine.sweep(&plan).unwrap();
    assert_eq!(
        outcome.errors, 0,
        "corruption must never surface as an error"
    );
    assert_eq!(outcome.disk_hits, 7, "intact entries still serve");
    let stats = engine.disk_stats().unwrap();
    assert_eq!(stats.corrupt, 2, "both vandalised entries detected");
    assert_eq!(stats.writes, 2, "recomputed results re-persisted");
    assert_eq!(
        outcome.summary_table().to_csv(),
        reference,
        "recomputed grid must match the original byte-for-byte"
    );

    // The store healed itself: a fresh engine now gets all 9 from disk.
    let healed = Engine::standard().with_disk_cache(&dir.0).unwrap();
    assert_eq!(healed.sweep(&plan).unwrap().disk_hits, 9);
}

#[test]
fn corrupt_entries_still_pay_the_job_budget() {
    // A corrupt disk entry falls through to recompute — that compute
    // must claim a budget slot like any other (regression: the
    // existence-only pre-check let it through unbudgeted).
    let dir = TempDir::new("budget-corrupt");
    let plan = nine_point_plan();
    Engine::standard()
        .with_disk_cache(&dir.0)
        .unwrap()
        .sweep(&plan)
        .unwrap();
    let entries: Vec<PathBuf> = fs::read_dir(dir.0.join("v1"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    for path in entries.iter().take(3) {
        fs::write(path, "garbage\n").unwrap();
    }
    let engine = Engine::standard().with_disk_cache(&dir.0).unwrap();
    let outcome = engine
        .sweep_with(
            &plan,
            &SweepOptions {
                limit: Some(2),
                on_done: None,
                cancel: None,
            },
        )
        .unwrap();
    assert_eq!(outcome.disk_hits, 6, "intact entries are budget-free");
    assert_eq!(
        outcome.skipped, 1,
        "the third corrupt entry exceeds the budget"
    );
    assert_eq!(outcome.errors, 0);
    assert_eq!(
        engine.disk_stats().unwrap().writes,
        2,
        "exactly the budgeted recomputes were persisted"
    );
}

#[test]
fn bounded_memory_tier_reports_pressure_and_leans_on_disk() {
    let dir = TempDir::new("eviction");
    let plan = nine_point_plan();
    let engine = Engine::standard()
        .with_cache_capacity(3)
        .with_disk_cache(&dir.0)
        .unwrap();
    let cold = engine.sweep(&plan).unwrap();
    assert_eq!(cold.errors, 0);
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 3, "memory tier stays within its bound");
    assert_eq!(stats.capacity, Some(3));
    assert!(
        stats.evictions >= 6,
        "9 inserts into 3 slots must evict: {stats:?}"
    );
    // Despite the evictions, the warm re-run recomputes nothing: the
    // evicted points come back from the disk tier.
    let warm = engine.sweep(&plan).unwrap();
    assert_eq!(warm.cache_hits, 9);
    assert!(warm.disk_hits >= 6, "evicted points served from disk");
}

#[test]
fn interrupted_sweep_resumes_to_a_byte_identical_csv() {
    let interrupted_dir = TempDir::new("resume");
    let plan = nine_point_plan();
    let journal_path = SweepJournal::path_for(&interrupted_dir.0, &SweepJournal::run_id(&plan));

    // "Process" A: journaled sweep killed after 4 of 9 jobs (the job
    // budget stands in for the kill — completed work is on disk and in
    // the journal, the rest never ran).
    {
        let engine = Engine::standard()
            .with_disk_cache(&interrupted_dir.0)
            .unwrap();
        let journal = SweepJournal::create(&journal_path, &plan).unwrap();
        let record = |e: &mramsim_engine::JobEvent<'_>| {
            if e.ok {
                journal.record(e.index, e.key);
            }
        };
        let partial = engine
            .sweep_with(
                &plan,
                &SweepOptions {
                    limit: Some(4),
                    on_done: Some(&record),
                    cancel: None,
                },
            )
            .unwrap();
        assert_eq!(partial.skipped, 5, "the budget must stop the sweep");
        assert_eq!(partial.errors, 0);
        let table = partial.summary_table();
        assert!(
            table.to_csv().contains("skipped"),
            "partial output must mark unrun points"
        );
    }

    // "Process" B: resume from the journal alone — plan reconstructed,
    // finished points served from disk, the rest computed now.
    let resumed_csv = {
        let (journal, state) = SweepJournal::resume(&journal_path).unwrap();
        assert_eq!(state.plan, plan, "journal must reconstruct the plan");
        assert_eq!(state.done.len(), 4);
        let engine = Engine::standard()
            .with_disk_cache(&interrupted_dir.0)
            .unwrap();
        let record = |e: &mramsim_engine::JobEvent<'_>| {
            if e.ok {
                journal.record(e.index, e.key);
            }
        };
        let outcome = engine
            .sweep_with(
                &state.plan,
                &SweepOptions {
                    limit: None,
                    on_done: Some(&record),
                    cancel: None,
                },
            )
            .unwrap();
        assert_eq!(outcome.errors + outcome.skipped, 0);
        assert_eq!(outcome.disk_hits, 4, "the interrupted work is reused");
        outcome.summary_table().to_csv()
    };

    // "Process" C: the same sweep, uninterrupted, in a pristine cache.
    let uninterrupted_dir = TempDir::new("uninterrupted");
    let uninterrupted_csv = {
        let engine = Engine::standard()
            .with_disk_cache(&uninterrupted_dir.0)
            .unwrap();
        sweep_csv(&engine, &plan)
    };

    assert_eq!(
        resumed_csv, uninterrupted_csv,
        "resumed sweep must be byte-identical to an uninterrupted run"
    );

    // The journal now logs all nine points.
    let (_, state) = SweepJournal::resume(&journal_path).unwrap();
    assert_eq!(state.done.len(), 9);
}

// ---------------------------------------------------------------------
// CLI-level: the same properties through the real binary, in genuinely
// separate processes.
// ---------------------------------------------------------------------

/// Runs the binary, asserting success; returns (stdout, stderr).
fn mramsim(args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mramsim"))
        .args(args)
        .output()
        .expect("mramsim binary runs");
    assert!(
        out.status.success(),
        "mramsim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

#[test]
fn cli_second_process_is_all_disk_hits() {
    let dir = TempDir::new("cli-disk");
    let dir_str = dir.0.to_str().unwrap();
    let args = [
        "sweep",
        "fig4b",
        "--ecd",
        "35",
        "--pitch",
        "60..220:20",
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ];
    let (first_csv, first_err) = mramsim(&args);
    assert!(first_err.contains("9 point(s)"), "{first_err}");
    assert!(
        first_err.contains("0 cache hit(s) (0 warm, 0 from disk)"),
        "{first_err}"
    );
    let (second_csv, second_err) = mramsim(&args);
    assert!(
        second_err.contains("9 cache hit(s) (0 warm, 9 from disk)"),
        "second process must be 100% disk hits: {second_err}"
    );
    assert_eq!(
        first_csv, second_csv,
        "disk-served CSV must be byte-identical"
    );
}

#[test]
fn cli_interrupted_sweep_resumes_byte_identically() {
    let dir = TempDir::new("cli-resume");
    let dir_str = dir.0.to_str().unwrap();
    let sweep_args = [
        "sweep",
        "fig4b",
        "--ecd",
        "35",
        "--pitch",
        "60..220:20",
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ];

    // Interrupted: only 4 of the 9 points run before the (simulated)
    // kill; the run id is announced on stderr.
    let limited: Vec<&str> = sweep_args.iter().copied().chain(["--limit", "4"]).collect();
    let (partial_csv, partial_err) = mramsim(&limited);
    assert!(partial_csv.contains("skipped"), "{partial_csv}");
    assert!(partial_err.contains("5 skipped"), "{partial_err}");
    let run_id = partial_err
        .lines()
        .find_map(|l| l.strip_prefix("run `"))
        .and_then(|l| l.split('`').next())
        .expect("stderr announces the run id")
        .to_owned();
    assert!(run_id.starts_with("fig4b-"), "{run_id}");

    // Resumed in a new process, from the run id alone.
    let (resumed_csv, resumed_err) = mramsim(&[
        "sweep",
        "--resume",
        &run_id,
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ]);
    assert!(
        resumed_err.contains("resuming") && resumed_err.contains("4/9"),
        "{resumed_err}"
    );
    assert!(resumed_err.contains("4 from disk"), "{resumed_err}");

    // Uninterrupted, in a pristine cache directory, separate process.
    let fresh = TempDir::new("cli-uninterrupted");
    let fresh_args: Vec<&str> = sweep_args[..sweep_args.len() - 1]
        .iter()
        .copied()
        .chain([fresh.0.to_str().unwrap()])
        .collect();
    let (uninterrupted_csv, _) = mramsim(&fresh_args);

    assert_eq!(
        resumed_csv, uninterrupted_csv,
        "resumed CSV must be byte-identical to an uninterrupted run"
    );

    // Resuming a finished run is a no-op served entirely from disk.
    let (rerun_csv, rerun_err) = mramsim(&[
        "sweep",
        "--resume",
        &run_id,
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ]);
    assert!(
        rerun_err.contains("9 cache hit(s) (0 warm, 9 from disk)"),
        "{rerun_err}"
    );
    assert_eq!(rerun_csv, uninterrupted_csv);
}

#[test]
fn cli_interrupted_campaign_resumes_byte_identically() {
    // `campaign` shards a grid into journaled sweep points; a run
    // killed mid-campaign must resume at shard granularity to the
    // same bytes an uninterrupted campaign produces.
    let dir = TempDir::new("cli-campaign");
    let dir_str = dir.0.to_str().unwrap();
    let campaign_args = [
        "campaign",
        "--rows",
        "48",
        "--cols",
        "32",
        "--shard_rows",
        "16",
        "--trajectories",
        "12",
        "--pulse_ns",
        "4",
        "--max_radius",
        "2",
        "--field_tol",
        "60",
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ];

    let limited: Vec<&str> = campaign_args
        .iter()
        .copied()
        .chain(["--limit", "1"])
        .collect();
    let (_, partial_err) = mramsim(&limited);
    assert!(
        partial_err.contains("3 shard(s) of 16 row(s)"),
        "{partial_err}"
    );
    assert!(partial_err.contains("2 skipped"), "{partial_err}");
    // The sweep trailer reports the process-wide kernel cache traffic.
    assert!(partial_err.contains("kernel cache"), "{partial_err}");
    let run_id = partial_err
        .lines()
        .find_map(|l| l.strip_prefix("run `"))
        .and_then(|l| l.split('`').next())
        .expect("stderr announces the run id")
        .to_owned();
    assert!(run_id.starts_with("array-wer-shard-"), "{run_id}");

    // Resumed through the ordinary sweep machinery.
    let (resumed_csv, resumed_err) = mramsim(&[
        "sweep",
        "--resume",
        &run_id,
        "--format",
        "csv",
        "--cache-dir",
        dir_str,
    ]);
    assert!(
        resumed_err.contains("resuming") && resumed_err.contains("1/3"),
        "{resumed_err}"
    );

    // Uninterrupted, pristine cache, separate process.
    let fresh = TempDir::new("cli-campaign-uninterrupted");
    let fresh_args: Vec<&str> = campaign_args[..campaign_args.len() - 1]
        .iter()
        .copied()
        .chain([fresh.0.to_str().unwrap()])
        .collect();
    let (uninterrupted_csv, _) = mramsim(&fresh_args);
    assert_eq!(
        resumed_csv, uninterrupted_csv,
        "resumed campaign CSV must be byte-identical to an uninterrupted run"
    );
    // Every shard row is present exactly once, in shard order.
    let shards: Vec<&str> = resumed_csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap())
        .collect();
    assert_eq!(shards, ["0", "1", "2"], "{resumed_csv}");
}

#[test]
fn cli_degrades_to_memory_only_when_the_default_cache_dir_is_unusable() {
    // An unusable *default* directory (read-only HOME, sandbox) must
    // not break `run`/`sweep` — persistence is an optimisation there.
    let dir = TempDir::new("cli-unusable");
    let blocker = dir.0.join("blocker");
    fs::write(&blocker, "a file, not a directory").unwrap();
    let bad_default = blocker.join("nested"); // create_dir_all must fail
    let out = Command::new(env!("CARGO_BIN_EXE_mramsim"))
        .env("MRAMSIM_CACHE_DIR", &bad_default)
        .args(["run", "fig4a", "--format", "csv"])
        .output()
        .expect("mramsim binary runs");
    assert!(
        out.status.success(),
        "run must degrade gracefully: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("persistent cache disabled"),
        "degradation must be announced: {stderr}"
    );
    // The same directory passed *explicitly* is a hard error.
    let out = Command::new(env!("CARGO_BIN_EXE_mramsim"))
        .args(["run", "fig4a", "--cache-dir", bad_default.to_str().unwrap()])
        .output()
        .expect("mramsim binary runs");
    assert!(
        !out.status.success(),
        "an explicit unusable --cache-dir must fail loudly"
    );
}

#[test]
fn cli_rejects_misuse_of_resume() {
    let dir = TempDir::new("cli-misuse");
    let dir_str = dir.0.to_str().unwrap().to_owned();
    for args in [
        // Unknown run id.
        vec!["sweep", "--resume", "no-such-run", "--cache-dir", &dir_str],
        // Scenario/params alongside --resume.
        vec!["sweep", "fig4b", "--resume", "x", "--cache-dir", &dir_str],
        // --resume without a disk cache.
        vec!["sweep", "--resume", "x", "--cache-dir", "off"],
        // --resume on `run`.
        vec!["run", "fig4a", "--resume", "x"],
        // --limit without a store would waste the computed slice.
        vec![
            "sweep",
            "fig4b",
            "--pitch",
            "60,90",
            "--limit",
            "1",
            "--cache-dir",
            "off",
        ],
        // Typo'd scenario and unknown parameter fail before journaling.
        vec![
            "sweep",
            "fig4x",
            "--pitch",
            "60,90",
            "--cache-dir",
            &dir_str,
        ],
        vec![
            "sweep",
            "fig4b",
            "--pitchx",
            "60,90",
            "--cache-dir",
            &dir_str,
        ],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_mramsim"))
            .args(&args)
            .output()
            .expect("mramsim binary runs");
        assert!(!out.status.success(), "{args:?} should have failed");
    }
    // The failed sweeps above must not leave resumable-looking journal
    // debris behind.
    let runs = dir.0.join("runs");
    assert!(
        !runs.exists() || fs::read_dir(&runs).unwrap().next().is_none(),
        "invalid sweeps must not create journals"
    );
}
