//! Cross-process determinism of the Monte-Carlo scenarios: identical
//! parameters must produce byte-identical cache keys and byte-identical
//! CSV output for `wer-mc` and `array-wer`, whether the run happens in
//! this process or in independent `mramsim` child processes. This is
//! the property that makes seeded Monte-Carlo results safe to serve
//! from a content-addressed cache.

use mramsim_engine::cache::ResultCache;
use mramsim_engine::{Engine, ParamSet};
use std::process::Command;

/// Runs the real `mramsim` binary and returns its stdout. The
/// persistent cache is pointed at a scratch directory unique to this
/// test-process *invocation* (via the env var the CLI honours), so
/// runs are hermetic: nothing leaks in from the user's real cache or
/// from a previous `cargo test` whose PID happened to recur.
fn mramsim(args: &[&str]) -> String {
    use std::sync::OnceLock;
    static CACHE_DIR: OnceLock<std::path::PathBuf> = OnceLock::new();
    let cache_dir = CACHE_DIR.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        std::env::temp_dir().join(format!(
            "mramsim-determinism-cache-{}-{nanos}",
            std::process::id()
        ))
    });
    let out = Command::new(env!("CARGO_BIN_EXE_mramsim"))
        .env("MRAMSIM_CACHE_DIR", cache_dir)
        .args(args)
        .output()
        .expect("mramsim binary runs");
    assert!(
        out.status.success(),
        "mramsim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("CSV output is UTF-8")
}

const WER_MC_ARGS: [&str; 8] = [
    "run",
    "wer-mc",
    "--trajectories",
    "96",
    "--seed",
    "7",
    "--format",
    "csv",
];
const ARRAY_WER_ARGS: [&str; 14] = [
    "run",
    "array-wer",
    "--rows",
    "4",
    "--cols",
    "4",
    "--trajectories",
    "24",
    "--pulse_ns",
    "3",
    "--seed",
    "7",
    "--format",
    "csv",
];

#[test]
fn monte_carlo_csv_output_is_byte_identical_across_processes() {
    for args in [&WER_MC_ARGS[..], &ARRAY_WER_ARGS[..]] {
        // `--cache-dir off` forces both processes to *recompute*: this
        // is the seeded-MC determinism property, not the (separately
        // tested) disk round-trip property.
        let args: Vec<&str> = args.iter().copied().chain(["--cache-dir", "off"]).collect();
        let first = mramsim(&args);
        let second = mramsim(&args);
        assert!(first.contains(','), "{args:?} produced no CSV:\n{first}");
        assert_eq!(
            first, second,
            "{args:?} diverged between independent processes"
        );
    }
}

#[test]
fn in_process_runs_match_the_child_process_byte_for_byte() {
    // The engine API and the CLI are the same computation: the cache
    // may be filled by either and served to the other.
    let engine = Engine::standard();
    let wer_mc = engine
        .run(
            "wer-mc",
            &ParamSet::new().with("trajectories", 96.0).with("seed", 7.0),
        )
        .unwrap();
    assert_eq!(wer_mc.output.to_csv(), mramsim(&WER_MC_ARGS));

    let array_wer = engine
        .run(
            "array-wer",
            &ParamSet::new()
                .with("rows", 4.0)
                .with("cols", 4.0)
                .with("trajectories", 24.0)
                .with("pulse_ns", 3.0)
                .with("seed", 7.0),
        )
        .unwrap();
    assert_eq!(array_wer.output.to_csv(), mramsim(&ARRAY_WER_ARGS));
}

#[test]
fn cache_keys_are_reproducible_and_parameter_sensitive() {
    // Two independently constructed engines resolve the same overrides
    // to the same canonical fingerprint, hence the same 64-bit content
    // address — the invariant a future persistent (cross-process) cache
    // relies on.
    for (id, overrides) in [
        ("wer-mc", ParamSet::new().with("trajectories", 96.0)),
        (
            "array-wer",
            ParamSet::new().with("rows", 4.0).with("pattern", "zeros"),
        ),
    ] {
        let a = Engine::standard().resolve(id, &overrides).unwrap();
        let b = Engine::standard().resolve(id, &overrides).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "{id}");
        assert_eq!(
            ResultCache::key(id, &a.fingerprint()),
            ResultCache::key(id, &b.fingerprint()),
            "{id}"
        );
        // Every campaign knob moves the key.
        let c = Engine::standard()
            .resolve(id, &overrides.clone().with("seed", 8.0))
            .unwrap();
        assert_ne!(
            ResultCache::key(id, &a.fingerprint()),
            ResultCache::key(id, &c.fingerprint()),
            "{id}: seed must move the content address"
        );
    }
}
