//! The serve layer end to end, over real sockets: concurrent clients
//! submitting overlapping sweeps get byte-identical output to a
//! sequential run with every grid point computed exactly once;
//! submissions are validated up front; results are fetchable by
//! content address; and a mid-sweep graceful drain leaves a journal
//! that resumes to the uninterrupted answer.

use mramsim_engine::serve::{ServeConfig, Server};
use mramsim_engine::{Engine, SweepJournal, SweepPlan};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mramsim-serve-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A minimal blocking HTTP/1.1 client: one request per connection
/// (the server always answers `Connection: close`), chunked bodies
/// transparently decoded. Returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header terminator");
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(payload)
    } else {
        payload.to_owned()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size.trim(), 16) else {
            break;
        };
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

/// Pulls a `"name":"value"` or `"name":value` field out of a JSON
/// line without a parser — the serve wire format is flat.
fn field(json: &str, name: &str) -> String {
    let key = format!("\"{name}\":");
    let start = json
        .find(&key)
        .unwrap_or_else(|| panic!("no {name} in {json}"))
        + key.len();
    let rest = &json[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = stripped.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => break,
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => out.push(other),
                    None => break,
                },
                other => out.push(other),
            }
        }
        out
    } else {
        rest.chars()
            .take_while(|c| !",}".contains(*c))
            .collect::<String>()
            .trim()
            .to_owned()
    }
}

/// Binds a server over `engine` on a free port and runs it on a
/// background thread; the thread exits on graceful shutdown.
fn spawn_server(
    engine: Arc<Engine>,
    cache_dir: Option<PathBuf>,
    max_inflight: usize,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_inflight,
        cache_dir,
    };
    let server = Server::bind(engine, &config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Submits a plan and streams its progress to completion, returning
/// (final summary line, progress lines before it).
fn submit_and_stream(addr: SocketAddr, body: &str) -> (String, Vec<String>) {
    let (status, response) = post(addr, "/sweeps", body);
    assert!(
        status == 202 || status == 200,
        "submit failed: {status} {response}"
    );
    let progress = field(&response, "progress");
    let (status, streamed) = get(addr, &progress);
    assert_eq!(status, 200, "progress stream failed: {streamed}");
    let mut lines: Vec<String> = streamed.lines().map(str::to_owned).collect();
    let last = lines.pop().expect("at least the summary line");
    (last, lines)
}

const OVERLAP_PLAN: &str = r#"{"scenario":"fig4b","params":{"ecd":35},"axes":{"pitch":[60,80,100,120,140,160,180,200,220]}}"#;

fn overlap_plan() -> SweepPlan {
    SweepPlan::new("fig4b").fix("ecd", 35.0).axis(
        "pitch",
        (0..9).map(|i| 60.0 + 20.0 * f64::from(i)).collect(),
    )
}

#[test]
fn concurrent_clients_get_sequential_bytes_with_one_computation() {
    let dir = TempDir::new("concurrent");
    let engine = Arc::new(
        Engine::standard()
            .with_workers(2)
            .with_disk_cache(&dir.0)
            .unwrap(),
    );
    let (addr, server) = spawn_server(Arc::clone(&engine), Some(dir.0.clone()), 8);

    // The ground truth: the same plan, swept sequentially by an
    // isolated engine that shares nothing with the server.
    let baseline = Engine::standard()
        .with_workers(1)
        .sweep(&overlap_plan())
        .unwrap()
        .summary_table()
        .to_csv();

    // Four clients race the same sweep. Whoever lands first computes;
    // the others join the in-flight run or are served warm.
    let clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || submit_and_stream(addr, OVERLAP_PLAN)))
        .collect();
    for client in clients {
        let (last, _events) = client.join().expect("client thread");
        assert_eq!(field(&last, "status"), "done", "summary: {last}");
        assert_eq!(field(&last, "errors"), "0");
        assert_eq!(field(&last, "skipped"), "0");
        assert_eq!(field(&last, "csv"), baseline, "served CSV diverged");
    }

    // Exactly-once accounting: the shared engine persisted each of the
    // nine grid points exactly once, no matter how many clients asked.
    assert_eq!(engine.disk_stats().unwrap().writes, 9);

    // The results are content-addressed: re-fetch one by the key the
    // progress stream advertised.
    let (last, events) = submit_and_stream(addr, OVERLAP_PLAN);
    assert_eq!(field(&last, "cache_hits"), "9", "warm resubmit");
    let key = field(&events[0], "key");
    let (status, body) = get(addr, &format!("/results/{key}"));
    assert_eq!(status, 200, "result fetch: {body}");
    assert!(body.contains("psi_percent"), "payload: {body}");

    let (status, _body) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    server.join().expect("server thread");
}

#[test]
fn submissions_are_validated_and_admission_is_bounded() {
    let dir = TempDir::new("validate");
    let engine = Arc::new(Engine::standard().with_workers(1));
    let (addr, server) = spawn_server(engine, Some(dir.0.clone()), 1);

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(field(&body, "status"), "ok");

    // Up-front validation: unknown scenario, unknown parameter,
    // malformed JSON, axes routed to the wrong endpoint.
    let cases = [
        ("/sweeps", r#"{"scenario":"nope","axes":{"pitch":[1]}}"#),
        ("/sweeps", r#"{"scenario":"fig4b","axes":{"bogus":[1]}}"#),
        ("/sweeps", "not json"),
        ("/sweeps", r#"{"scenario":"fig4b"}"#),
        ("/runs", r#"{"scenario":"fig4b","axes":{"pitch":[90]}}"#),
    ];
    for (path, bad) in cases {
        let (status, body) = post(addr, path, bad);
        assert_eq!(status, 400, "{path} {bad} -> {body}");
    }
    let (status, _) = get(addr, "/runs/j999");
    assert_eq!(status, 404);
    let (status, _) = get(addr, "/results/zzzz");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/results/00000000000000ff");
    assert_eq!(status, 404);

    // A single-point /runs submission flows through the same job
    // machinery: one streamed event, then a done summary.
    let (status, response) = post(
        addr,
        "/runs",
        r#"{"scenario":"fig4b","params":{"pitch":90}}"#,
    );
    assert_eq!(status, 202, "{response}");
    let (status, streamed) = get(addr, &field(&response, "progress"));
    assert_eq!(status, 200);
    let lines: Vec<&str> = streamed.lines().collect();
    assert_eq!(lines.len(), 2, "one event + summary: {streamed}");
    assert_eq!(field(lines[1], "status"), "done");
    assert_eq!(field(lines[1], "jobs"), "1");

    let (status, _body) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    server.join().expect("server thread");
}

#[test]
fn graceful_drain_leaves_a_resumable_journal() {
    let dir = TempDir::new("drain");
    let engine = Arc::new(
        Engine::standard()
            .with_workers(1)
            .with_disk_cache(&dir.0)
            .unwrap(),
    );
    let (addr, server) = spawn_server(Arc::clone(&engine), Some(dir.0.clone()), 2);

    // A sweep slow enough (Monte-Carlo WER, one worker) that the drain
    // lands mid-run; the exact split point is scheduling-dependent and
    // the assertions below hold for any split.
    let body = r#"{"scenario":"wer-mc","params":{"trajectories":600},"axes":{"pulse_ns":[0.8,1.0,1.2,1.4,1.6,1.8]}}"#;
    let (status, response) = post(addr, "/sweeps", body);
    assert_eq!(status, 202, "{response}");
    let run_id = field(&response, "run_id");
    let journal_path = SweepJournal::path_for(&dir.0, &run_id);

    // Wait for the first checkpoint so the drain is genuinely
    // mid-sweep, then pull the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    while fs::read_to_string(&journal_path)
        .map(|s| s.lines().count() < 2)
        .unwrap_or(true)
    {
        assert!(Instant::now() < deadline, "no checkpoint within 60s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, drain) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(field(&drain, "draining"), "true");
    server.join().expect("server drains and exits");

    // The journal survived the drain with its run lock released and at
    // least one durable checkpoint.
    let journal = fs::read_to_string(&journal_path).unwrap();
    assert!(journal.lines().count() >= 2, "journal: {journal}");
    assert!(
        !journal_path.with_extension("journal.lock").exists(),
        "run lock must be released by the drain"
    );

    // A fresh engine over the same cache dir resumes: checkpointed
    // points come from disk, the rest compute, and the final answer is
    // byte-identical to an undisturbed sequential run.
    let resumed = Engine::standard()
        .with_workers(1)
        .with_disk_cache(&dir.0)
        .unwrap();
    let plan = SweepPlan::new("wer-mc")
        .fix("trajectories", 600.0)
        .axis("pulse_ns", vec![0.8, 1.0, 1.2, 1.4, 1.6, 1.8]);
    let outcome = resumed.sweep(&plan).unwrap();
    assert_eq!(outcome.errors + outcome.skipped, 0);
    assert!(outcome.disk_hits >= 1, "checkpointed work must be reused");
    let baseline = Engine::standard()
        .with_workers(1)
        .sweep(&plan)
        .unwrap()
        .summary_table()
        .to_csv();
    assert_eq!(outcome.summary_table().to_csv(), baseline);
}
