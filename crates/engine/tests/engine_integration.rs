//! End-to-end coverage of the execution engine: every registered
//! scenario runs with its default parameters, produces non-empty
//! output, and is served from the cache on the second run.

use mramsim_engine::{Engine, ParamSet, SweepPlan};

#[test]
fn every_registered_scenario_runs_end_to_end_and_caches() {
    let engine = Engine::standard();
    let ids: Vec<&str> = engine.registry().ids().collect();
    assert_eq!(ids.len(), 17, "the standard registry shrank: {ids:?}");

    for id in &ids {
        let cold = engine
            .run(id, &ParamSet::new())
            .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(!cold.cache_hit, "{id}: first run must be a miss");
        assert!(
            !cold.output.tables.is_empty(),
            "{id}: no tables in the output"
        );
        for table in &cold.output.tables {
            assert!(table.row_count() > 0, "{id}: empty table in the output");
        }
        let markdown = cold.output.to_markdown();
        assert!(markdown.contains("###"), "{id}: markdown lost the tables");
        let csv = cold.output.to_csv();
        assert!(csv.contains(','), "{id}: csv came out empty");

        let warm = engine
            .run(id, &ParamSet::new())
            .unwrap_or_else(|e| panic!("{id} warm run failed: {e}"));
        assert!(warm.cache_hit, "{id}: second run must be a cache hit");
    }

    let stats = engine.cache_stats();
    assert_eq!(stats.entries, ids.len());
    assert_eq!(stats.hits, ids.len() as u64);
}

#[test]
fn default_parameters_round_trip_through_the_resolver() {
    let engine = Engine::standard();
    for scenario in engine.registry().iter() {
        let resolved = engine.resolve(scenario.id(), &ParamSet::new()).unwrap();
        for spec in scenario.params() {
            assert_eq!(
                resolved.get(spec.name),
                Some(&spec.default),
                "{}: default for `{}` lost in resolution",
                scenario.id(),
                spec.name
            );
        }
    }
}

#[test]
fn fifty_point_grid_sweeps_in_parallel_with_a_warm_cache_rerun() {
    let engine = Engine::standard().with_workers(4);
    // A 5 eCD × 10 pitch grid = 50 points, the acceptance-criteria
    // scale, swept through the Ψ point-mode scenario.
    let plan = SweepPlan::new("fig4b")
        .axis("ecd", vec![20.0, 30.0, 35.0, 45.0, 55.0])
        .axis(
            "pitch",
            (0..10).map(|i| 85.0 + 10.0 * f64::from(i)).collect(),
        );
    let cold = engine.sweep(&plan).unwrap();
    assert_eq!(cold.jobs.len(), 50);
    assert_eq!(cold.errors, 0);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.summary_table().row_count(), 50);

    let warm = engine.sweep(&plan).unwrap();
    assert_eq!(warm.cache_hits, 50, "warm sweep must be all cache hits");
    assert!(
        warm.duration <= cold.duration,
        "warm sweep should not be slower: {:?} vs {:?}",
        warm.duration,
        cold.duration
    );

    // The cached grid agrees point-for-point with the cold run.
    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(a.scalar("psi"), b.scalar("psi"));
    }
}

#[test]
fn wer_mc_is_deterministic_cached_and_sweepable_over_pulse_width() {
    // The acceptance-criteria path at test scale: a seeded Monte-Carlo
    // run reproduces bit-for-bit, repeats hit the result cache, and the
    // pulse-width axis sweeps with monotone non-increasing analytic WER.
    let engine = Engine::standard().with_workers(4);
    let point = ParamSet::new()
        .with("trajectories", 128.0)
        .with("seed", 7.0);
    let cold = engine.run("wer-mc", &point).unwrap();
    assert!(!cold.cache_hit);
    let warm = engine.run("wer-mc", &point).unwrap();
    assert!(warm.cache_hit, "repeat run must be served from the cache");
    assert_eq!(
        cold.output.scalar("wer_mc"),
        warm.output.scalar("wer_mc"),
        "seeded MC result must be reproducible"
    );
    // A different seed is a different content address and result.
    let reseeded = engine
        .run("wer-mc", &point.clone().with("seed", 8.0))
        .unwrap();
    assert!(!reseeded.cache_hit);

    let plan = SweepPlan::new("wer-mc")
        .fix("trajectories", 128.0)
        .axis("pulse_ns", vec![0.9, 1.3, 1.8]);
    let sweep = engine.sweep(&plan).unwrap();
    assert_eq!(sweep.errors, 0);
    let analytic: Vec<f64> = sweep
        .jobs
        .iter()
        .map(|j| j.result.as_ref().unwrap().scalar("wer_analytic").unwrap())
        .collect();
    assert!(
        analytic.windows(2).all(|w| w[1] <= w[0]),
        "longer pulses must not raise the analytic WER: {analytic:?}"
    );
}

#[test]
fn array_wer_checkerboard_sweeps_two_densities_worker_invariantly() {
    // The acceptance-criteria path at test scale: an 8x8 checkerboard
    // campaign swept over two pitches (two densities), with per-cell
    // Monte-Carlo results bit-identical across worker counts.
    let plan = SweepPlan::new("array-wer")
        .fix("rows", 8.0)
        .fix("cols", 8.0)
        .fix("pattern", "checkerboard")
        .fix("trajectories", 16.0)
        .fix("pulse_ns", 4.0)
        .fix("seed", 7.0)
        .axis("pitch", vec![60.0, 90.0]);
    let narrow = Engine::standard().with_workers(1).sweep(&plan).unwrap();
    let wide = Engine::standard().with_workers(4).sweep(&plan).unwrap();
    assert_eq!(narrow.errors, 0, "{:?}", narrow.jobs[0].result);
    assert_eq!(narrow.jobs.len(), 2);
    for (a, b) in narrow.jobs.iter().zip(&wide.jobs) {
        assert_eq!(
            a.result.as_ref().unwrap().to_csv(),
            b.result.as_ref().unwrap().to_csv(),
            "per-cell MC results must not depend on the worker count"
        );
    }
    // The WER-vs-pitch curve: density falls with pitch, and the tighter
    // pitch must not have a better analytic worst case.
    let scalar = |job: &mramsim_engine::SweepJob, name: &str| {
        job.result.as_ref().unwrap().scalar(name).unwrap()
    };
    assert!(
        scalar(&narrow.jobs[0], "density_bits_per_um2")
            > scalar(&narrow.jobs[1], "density_bits_per_um2")
    );
    assert!(
        scalar(&narrow.jobs[0], "worst_wer_analytic")
            >= scalar(&narrow.jobs[1], "worst_wer_analytic")
    );
    // The fault-map table carries one row per cell.
    let out = narrow.jobs[0].result.as_ref().unwrap();
    assert_eq!(out.tables[1].row_count(), 64);
    assert!(out.chart.as_deref().unwrap().lines().count() == 8);
}

#[test]
fn sweep_results_match_isolated_runs() {
    // The same parameter point must produce identical output whether
    // it ran alone or inside a parallel sweep (deterministic seeding).
    let sweeping = Engine::standard().with_workers(4);
    let solo = Engine::standard();
    let plan = SweepPlan::new("fig4a").axis("pitch", vec![90.0, 120.0, 180.0]);
    let swept = sweeping.sweep(&plan).unwrap();
    for job in &swept.jobs {
        let alone = solo.run("fig4a", &job.params).unwrap();
        assert_eq!(
            job.result.as_ref().unwrap().as_ref(),
            alone.output.as_ref(),
            "pitch {:?} diverged between sweep and solo run",
            job.point
        );
    }
}
