//! Golden-figure regression suite: every figure scenario re-runs with a
//! fixed seed and reduced grids, and its CSV output is compared against
//! a committed golden within per-column tolerances.
//!
//! Regenerate after an intentional model change with
//!
//! ```console
//! $ GOLDEN_REGENERATE=1 cargo test -p mramsim-engine --test golden_figures
//! ```
//!
//! and commit the updated files under `tests/golden/`. On mismatch the
//! actual output is written to `target/golden-diff/<id>.csv` (uploaded
//! as a CI artifact) so a failure can be inspected — or promoted to the
//! new golden — without re-running the suite.

use mramsim_engine::{Engine, ParamSet};
use std::fs;
use std::path::PathBuf;

/// One figure scenario pinned to a small, fully seeded parameter point.
struct GoldenCase {
    id: &'static str,
    overrides: ParamSet,
    /// Per-column `(relative, absolute)` tolerance overrides; every
    /// other numeric column uses [`DEFAULT_TOL`].
    column_tolerances: &'static [(&'static str, (f64, f64))],
}

/// Printed CSV cells are rounded to a few decimals, so bit-identical
/// runs compare exactly; the default tolerance only forgives
/// last-printed-digit jitter from FP-level refactors.
const DEFAULT_TOL: (f64, f64) = (1e-6, 1e-9);

fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            id: "fig2a",
            overrides: ParamSet::new(),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig2b",
            overrides: ParamSet::new()
                .with("devices_per_size", 2.0)
                .with("sim_grid", vec![20.0, 55.0, 175.0]),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig3c",
            overrides: ParamSet::new().with("grid", 7.0),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig3d",
            overrides: ParamSet::new()
                .with("ecds", vec![35.0, 90.0])
                .with("samples", 9.0),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig4a",
            overrides: ParamSet::new(),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig4b",
            overrides: ParamSet::new()
                .with("ecds", vec![35.0, 55.0])
                .with("points", 6.0),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig4c",
            overrides: ParamSet::new().with("points", 7.0),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig5",
            overrides: ParamSet::new()
                .with("pitch_factors", vec![2.0, 1.5])
                .with("points", 6.0),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig6a",
            overrides: ParamSet::new().with("temps_c", vec![0.0, 50.0, 100.0, 150.0]),
            column_tolerances: &[],
        },
        GoldenCase {
            id: "fig6b",
            overrides: ParamSet::new()
                .with("pitch_factors", vec![3.0, 1.5])
                .with("temps_c", vec![25.0, 85.0, 145.0]),
            column_tolerances: &[],
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn diff_dir() -> PathBuf {
    // The workspace target directory, where CI collects artifacts.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diff")
}

/// Compares two CSV bodies line-by-line: numeric cells within the
/// column's tolerance, everything else exactly. Table header lines
/// (tracked as the first line and any line after a blank) name the
/// columns for the tolerance lookup.
fn compare_csv(
    golden: &str,
    actual: &str,
    tolerances: &[(&str, (f64, f64))],
) -> Result<(), String> {
    let g_lines: Vec<&str> = golden.lines().collect();
    let a_lines: Vec<&str> = actual.lines().collect();
    if g_lines.len() != a_lines.len() {
        return Err(format!(
            "line count changed: golden {} vs actual {}",
            g_lines.len(),
            a_lines.len()
        ));
    }
    let mut columns: Vec<String> = Vec::new();
    let mut at_header = true;
    for (n, (g, a)) in g_lines.iter().zip(&a_lines).enumerate() {
        if g.is_empty() || a.is_empty() {
            if g != a {
                return Err(format!("line {}: `{a}` vs golden `{g}`", n + 1));
            }
            at_header = true; // a blank line separates tables
            continue;
        }
        if at_header {
            if g != a {
                return Err(format!("header line {}: `{a}` vs golden `{g}`", n + 1));
            }
            columns = g.split(',').map(str::to_owned).collect();
            at_header = false;
            continue;
        }
        let g_cells: Vec<&str> = g.split(',').collect();
        let a_cells: Vec<&str> = a.split(',').collect();
        if g_cells.len() != a_cells.len() {
            return Err(format!("line {}: `{a}` vs golden `{g}`", n + 1));
        }
        for (i, (gc, ac)) in g_cells.iter().zip(&a_cells).enumerate() {
            let column = columns.get(i).map_or("", String::as_str);
            match (gc.parse::<f64>(), ac.parse::<f64>()) {
                (Ok(gv), Ok(av)) => {
                    let (rtol, atol) = tolerances
                        .iter()
                        .find(|(name, _)| *name == column)
                        .map_or(DEFAULT_TOL, |(_, t)| *t);
                    let limit = atol + rtol * gv.abs().max(av.abs());
                    if !((gv - av).abs() <= limit) {
                        return Err(format!(
                            "line {}, column `{column}`: {av} vs golden {gv} \
                             (|diff| = {:.3e} > {limit:.3e})",
                            n + 1,
                            (gv - av).abs()
                        ));
                    }
                }
                _ => {
                    if gc != ac {
                        return Err(format!(
                            "line {}, column `{column}`: `{ac}` vs golden `{gc}`",
                            n + 1
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[test]
fn figure_scenarios_match_their_goldens() {
    let regenerate = std::env::var_os("GOLDEN_REGENERATE").is_some();
    let engine = Engine::standard();
    let mut failures = Vec::new();
    for case in cases() {
        let outcome = engine
            .run(case.id, &case.overrides)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", case.id));
        let actual = outcome.output.to_csv();
        let path = golden_dir().join(format!("{}.csv", case.id));
        if regenerate {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&path, &actual).unwrap();
            continue;
        }
        let golden = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        if let Err(reason) = compare_csv(&golden, &actual, case.column_tolerances) {
            fs::create_dir_all(diff_dir()).unwrap();
            let diff_path = diff_dir().join(format!("{}.csv", case.id));
            fs::write(&diff_path, &actual).unwrap();
            failures.push(format!(
                "{}: {reason}\n  actual output written to {}",
                case.id,
                diff_path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (regenerate intentional changes with \
         GOLDEN_REGENERATE=1):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_suite_covers_all_ten_figures() {
    let ids: Vec<&str> = cases().iter().map(|c| c.id).collect();
    assert_eq!(
        ids,
        ["fig2a", "fig2b", "fig3c", "fig3d", "fig4a", "fig4b", "fig4c", "fig5", "fig6a", "fig6b"]
    );
    // Every golden is committed.
    for id in ids {
        assert!(
            golden_dir().join(format!("{id}.csv")).exists(),
            "golden for {id} is missing — run GOLDEN_REGENERATE=1"
        );
    }
}

#[test]
fn csv_comparator_enforces_per_column_tolerances() {
    let golden = "a,b\n1.00,2.00\n\nq,v\nname,3.0\n";
    // Identical passes.
    assert!(compare_csv(golden, golden, &[]).is_ok());
    // Inside a loose per-column tolerance passes, outside fails.
    let close = "a,b\n1.00,2.01\n\nq,v\nname,3.0\n";
    assert!(compare_csv(golden, close, &[("b", (0.0, 0.05))]).is_ok());
    assert!(compare_csv(golden, close, &[]).is_err());
    // Text changes and shape changes always fail.
    assert!(compare_csv(golden, "a,b\n1.00,2.00\n\nq,v\nother,3.0\n", &[]).is_err());
    assert!(compare_csv(golden, "a,b\n1.00,2.00\n", &[]).is_err());
    // A changed header is a contract change, not a numeric drift.
    assert!(compare_csv(golden, "a,c\n1.00,2.00\n\nq,v\nname,3.0\n", &[]).is_err());
}
