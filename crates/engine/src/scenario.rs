//! The [`Scenario`] abstraction: one uniform interface over every
//! driver in the workspace.

use crate::{EngineError, ParamSet, ParamSpec};
use mramsim_core::report::Table;

/// Anything the engine can run: a paper figure, the design-space
/// explorer, the fault simulator, or any future workload.
///
/// Implementations must be cheap to construct and stateless — all
/// inputs arrive through the [`ParamSet`], which is what makes runs
/// cacheable and sweepable.
pub trait Scenario: Send + Sync {
    /// Stable identifier (`fig4b`, `explore`, `faults`, …).
    fn id(&self) -> &'static str;

    /// One-line description shown by `mramsim list`.
    fn summary(&self) -> &'static str;

    /// The declared parameters with their defaults. The engine rejects
    /// any parameter outside this list before [`Scenario::run`] is
    /// called.
    fn params(&self) -> Vec<ParamSpec>;

    /// Runs the scenario for one fully resolved parameter point.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] for out-of-domain values and
    /// [`EngineError::Scenario`] for model failures.
    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError>;
}

/// The uniform result of one scenario run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioOutput {
    /// Result tables (at least one for every successful run).
    pub tables: Vec<Table>,
    /// An optional ASCII chart.
    pub chart: Option<String>,
    /// Named headline numbers — the values a sweep summarises.
    pub scalars: Vec<(String, f64)>,
}

impl ScenarioOutput {
    /// An output holding one table.
    #[must_use]
    pub fn from_table(table: Table) -> Self {
        Self {
            tables: vec![table],
            ..Self::default()
        }
    }

    /// Builder-style: adds a table.
    #[must_use]
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Builder-style: sets the chart.
    #[must_use]
    pub fn with_chart(mut self, chart: String) -> Self {
        self.chart = Some(chart);
        self
    }

    /// Builder-style: adds a headline scalar.
    #[must_use]
    pub fn with_scalar(mut self, name: &str, value: f64) -> Self {
        self.scalars.push((name.to_owned(), value));
        self
    }

    /// Looks up a headline scalar by name.
    #[must_use]
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Renders everything as Markdown (tables, then scalars, then the
    /// chart in a code fence).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        if !self.scalars.is_empty() {
            out.push_str("**headline numbers:**\n\n");
            for (name, value) in &self.scalars {
                out.push_str(&format!("* `{name}` = {value:.6}\n"));
            }
            out.push('\n');
        }
        if let Some(chart) = &self.chart {
            out.push_str("```text\n");
            out.push_str(chart);
            out.push_str("```\n");
        }
        out
    }

    /// Renders all tables as CSV, separated by blank lines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_csv)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(&["1", "2"]);
        t
    }

    #[test]
    fn builders_accumulate() {
        let out = ScenarioOutput::from_table(table())
            .with_table(table())
            .with_chart("chart-body\n".into())
            .with_scalar("psi", 0.02);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.scalar("psi"), Some(0.02));
        assert_eq!(out.scalar("nope"), None);
        let md = out.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("`psi` = 0.02"));
        assert!(md.contains("chart-body"));
        assert!(out.to_csv().contains("a,b"));
    }
}
