//! Sweep planning: cartesian parameter grids over one scenario.

use crate::{EngineError, ParamSet};

/// A cartesian parameter grid over one scenario.
///
/// Fixed overrides apply to every job; each axis multiplies the grid.
/// Expansion order is deterministic: the first axis varies slowest,
/// the last varies fastest.
///
/// # Examples
///
/// ```
/// use mramsim_engine::SweepPlan;
///
/// let plan = SweepPlan::new("fig4b")
///     .fix("psi_threshold", 0.02)
///     .axis("ecd", vec![20.0, 35.0, 55.0])
///     .axis("pitch", vec![60.0, 90.0]);
/// assert_eq!(plan.len(), 6);
/// let jobs = plan.expand().unwrap();
/// assert_eq!(jobs[0].number("ecd").unwrap(), 20.0);
/// assert_eq!(jobs[1].number("pitch").unwrap(), 90.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    scenario: String,
    fixed: ParamSet,
    axes: Vec<(String, Vec<f64>)>,
}

impl SweepPlan {
    /// A plan over `scenario` with no axes yet (one job).
    #[must_use]
    pub fn new(scenario: &str) -> Self {
        Self {
            scenario: scenario.to_owned(),
            fixed: ParamSet::new(),
            axes: Vec::new(),
        }
    }

    /// The target scenario id.
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Fixes one parameter for every job.
    #[must_use]
    pub fn fix(mut self, name: &str, value: impl Into<crate::ParamValue>) -> Self {
        self.fixed.insert(name, value);
        self
    }

    /// Adds a sweep axis. An empty `values` list makes the plan
    /// unexpandable (see [`SweepPlan::expand`]).
    #[must_use]
    pub fn axis(mut self, name: &str, values: Vec<f64>) -> Self {
        self.axes.push((name.to_owned(), values));
        self
    }

    /// The fixed overrides applied to every job.
    #[must_use]
    pub fn fixed(&self) -> &ParamSet {
        &self.fixed
    }

    /// The axes in declaration order.
    #[must_use]
    pub fn axes(&self) -> &[(String, Vec<f64>)] {
        &self.axes
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Whether the grid has no points (some axis is empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into one [`ParamSet`] per job.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] when an axis is empty or
    /// duplicates another axis or a fixed parameter.
    pub fn expand(&self) -> Result<Vec<ParamSet>, EngineError> {
        for (i, (name, values)) in self.axes.iter().enumerate() {
            if values.is_empty() {
                return Err(EngineError::InvalidParameter {
                    name: name.clone(),
                    message: "sweep axis has no values".into(),
                });
            }
            if self.fixed.contains(name) || self.axes[..i].iter().any(|(n, _)| n == name) {
                return Err(EngineError::InvalidParameter {
                    name: name.clone(),
                    message: "parameter appears twice in the plan".into(),
                });
            }
        }
        let mut jobs = vec![self.fixed.clone()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(jobs.len() * values.len());
            for job in &jobs {
                for &value in values {
                    next.push(job.clone().with(name, value));
                }
            }
            jobs = next;
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_and_ordered() {
        let plan = SweepPlan::new("s")
            .axis("a", vec![1.0, 2.0])
            .axis("b", vec![10.0, 20.0, 30.0]);
        let jobs = plan.expand().unwrap();
        assert_eq!(jobs.len(), 6);
        // First axis slowest.
        let pairs: Vec<(f64, f64)> = jobs
            .iter()
            .map(|j| (j.number("a").unwrap(), j.number("b").unwrap()))
            .collect();
        assert_eq!(pairs[0], (1.0, 10.0));
        assert_eq!(pairs[2], (1.0, 30.0));
        assert_eq!(pairs[3], (2.0, 10.0));
    }

    #[test]
    fn no_axes_means_one_job_with_the_fixed_params() {
        let plan = SweepPlan::new("s").fix("x", 5.0);
        let jobs = plan.expand().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].number("x").unwrap(), 5.0);
    }

    #[test]
    fn empty_axis_is_rejected() {
        assert!(SweepPlan::new("s").axis("a", vec![]).expand().is_err());
    }

    #[test]
    fn duplicate_parameters_are_rejected() {
        assert!(SweepPlan::new("s")
            .axis("a", vec![1.0])
            .axis("a", vec![2.0])
            .expand()
            .is_err());
        assert!(SweepPlan::new("s")
            .fix("a", 1.0)
            .axis("a", vec![2.0])
            .expand()
            .is_err());
    }
}
