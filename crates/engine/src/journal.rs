//! Sweep journals: durable checkpoints that make long campaigns
//! resumable.
//!
//! A journal is one append-only text file per sweep run. Its header
//! captures the *full* plan (scenario, fixed overrides, axes — all
//! values bit-exact), so `mramsim sweep --resume <run>` needs nothing
//! but the run id; every completed grid point then appends one
//! `done <index> <key>` line, flushed immediately, so a killed process
//! keeps everything it finished. Results themselves live in the
//! [`crate::store::DiskStore`]; on resume the engine replays the whole
//! grid and the journaled points come back as disk hits, which —
//! together with deterministic per-job seeding and the store's exact
//! round-trip — makes a resumed sweep's CSV byte-identical to an
//! uninterrupted run.
//!
//! Robustness: the trailing line of a journal from a killed process
//! may be truncated mid-write; loading tolerates (and discards)
//! exactly that, while a malformed *header* is a hard error — resuming
//! the wrong plan silently would be worse than failing.
//!
//! Liveness: the run id is purely content-derived, so two concurrent
//! submissions of the same plan would open the same `.journal` (and
//! `.telemetry`) files and interleave writes. A sidecar lock file
//! (`<run-id>.journal.lock`, created with `O_EXCL`, holding the owner
//! pid) makes that collision a typed [`EngineError::RunInFlight`]
//! instead; locks whose owner process is gone are reclaimed, so a
//! killed sweep never blocks its own `--resume`.

use crate::store::{Wire, WireReader};
use crate::{EngineError, ParamValue, SweepPlan};
use mramsim_numerics::hash::{key_hex, parse_key_hex, Fnv1a};
use mramsim_telemetry as telemetry;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The state recovered from an existing journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalState {
    /// The journaled plan, reconstructed bit-exactly.
    pub plan: SweepPlan,
    /// Completed grid points: expansion index → content address.
    pub done: BTreeMap<usize, u64>,
}

/// An append-only checkpoint journal for one sweep run.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<fs::File>,
    poisoned: AtomicBool,
    reported: AtomicBool,
    // Held for the journal's whole lifetime; releases on drop.
    _lock: RunLock,
}

/// Exclusive ownership of one run id, held as a sidecar lock file next
/// to the journal. The file is created with `create_new` (`O_EXCL`) and
/// contains the owner's pid; dropping the lock removes the file.
#[derive(Debug)]
struct RunLock {
    path: PathBuf,
}

impl RunLock {
    /// Lock file location for a journal path.
    fn path_for(journal_path: &Path) -> PathBuf {
        let mut name = journal_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(".lock");
        journal_path.with_file_name(name)
    }

    /// Acquires the run lock, reclaiming it from a dead holder.
    ///
    /// A lock whose recorded pid no longer exists (the process was
    /// killed before `Drop` ran) is stale and stolen — otherwise a
    /// killed sweep could never `--resume` itself. A live holder is an
    /// [`EngineError::RunInFlight`].
    fn acquire(journal_path: &Path) -> Result<Self, EngineError> {
        let path = Self::path_for(journal_path);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| EngineError::Persistence {
                path: path.display().to_string(),
                message: format!("cannot create run-lock directory: {e}"),
            })?;
        }
        // Two attempts: the second runs only after a stale lock was
        // removed; losing *that* race means a genuinely live rival.
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = file.write_all(format!("{}\n", std::process::id()).as_bytes());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if attempt == 0 && !process_is_alive(pid) => {
                            // Stale: the holder died without cleanup.
                            let _ = fs::remove_file(&path);
                            telemetry::counter_add("journal.locks_reclaimed", 1);
                        }
                        Some(pid) => {
                            let run_id = journal_path
                                .file_stem()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_default();
                            return Err(EngineError::RunInFlight {
                                run_id,
                                pid,
                                path: path.display().to_string(),
                            });
                        }
                        None if attempt == 0 => {
                            // Unreadable or empty (a racing acquirer
                            // between create and write, or garbage):
                            // retry once — if it is a live rival the
                            // pid will be there by then.
                            std::thread::yield_now();
                        }
                        None => {
                            return Err(EngineError::Persistence {
                                path: path.display().to_string(),
                                message: "run lock exists but holds no readable pid; \
                                          delete it if no sweep is running"
                                    .into(),
                            });
                        }
                    }
                }
                Err(e) => {
                    return Err(EngineError::Persistence {
                        path: path.display().to_string(),
                        message: format!("cannot create run lock: {e}"),
                    });
                }
            }
        }
        unreachable!("lock acquisition always returns within two attempts")
    }
}

impl Drop for RunLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether a pid names a live process. Uses `/proc` where it exists;
/// elsewhere assumes alive (never steals a lock it cannot check —
/// erring fatal is recoverable by hand, erring corrupt is not).
fn process_is_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    pid == std::process::id() || proc_root.join(pid.to_string()).exists()
}

impl SweepJournal {
    /// The stable run id of a plan: scenario plus a content hash over
    /// the fixed overrides and every axis value, bit-exact — the same
    /// plan always maps to the same id, across processes.
    #[must_use]
    pub fn run_id(plan: &SweepPlan) -> String {
        format!("{}-{:08x}", plan.scenario(), Self::plan_hash(plan) as u32)
    }

    /// The 64-bit content hash [`SweepJournal::run_id`] abbreviates.
    #[must_use]
    pub fn plan_hash(plan: &SweepPlan) -> u64 {
        let mut h = Fnv1a::new();
        h.field(plan.scenario().as_bytes());
        h.field(plan.fixed().fingerprint().as_bytes());
        for (name, values) in plan.axes() {
            h.field(name.as_bytes());
            for &v in values {
                h.f64(v);
            }
        }
        h.finish()
    }

    /// Where the journal of `run_id` lives under a cache directory.
    #[must_use]
    pub fn path_for(cache_dir: &Path, run_id: &str) -> PathBuf {
        cache_dir.join("runs").join(format!("{run_id}.journal"))
    }

    /// The journal's own path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Creates (truncating any previous journal of the same run) and
    /// writes the plan header.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persistence`] when the file cannot be created or
    /// written; [`EngineError::RunInFlight`] when a live process
    /// already owns this run (the lock is checked *before* truncating,
    /// so a collision never clobbers the live run's journal).
    pub fn create(path: impl Into<PathBuf>, plan: &SweepPlan) -> Result<Self, EngineError> {
        let path = path.into();
        let lock = RunLock::acquire(&path)?;
        let fail = |message: String| EngineError::Persistence {
            path: path.display().to_string(),
            message,
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| fail(format!("cannot create journal directory: {e}")))?;
        }
        let mut file =
            fs::File::create(&path).map_err(|e| fail(format!("cannot create journal: {e}")))?;
        file.write_all(encode_header(plan).as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| fail(format!("cannot write journal header: {e}")))?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            poisoned: AtomicBool::new(false),
            reported: AtomicBool::new(false),
            _lock: lock,
        })
    }

    /// Opens an existing journal for resumption: parses the plan and
    /// the completed-point log (tolerating a truncated trailing line
    /// from a killed process) and reopens the file for appending.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persistence`] when the file is missing or its
    /// header is unreadable; [`EngineError::RunInFlight`] when a live
    /// process still owns this run.
    pub fn resume(path: impl Into<PathBuf>) -> Result<(Self, JournalState), EngineError> {
        let path = path.into();
        let lock = RunLock::acquire(&path)?;
        let fail = |message: String| EngineError::Persistence {
            path: path.display().to_string(),
            message,
        };
        let text = fs::read_to_string(&path)
            .map_err(|e| fail(format!("cannot read journal (unknown run id?): {e}")))?;
        let state = parse_journal(&text)
            .ok_or_else(|| fail("journal header is corrupt; re-run without --resume".into()))?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| fail(format!("cannot reopen journal for appending: {e}")))?;
        Ok((
            Self {
                path,
                file: Mutex::new(file),
                poisoned: AtomicBool::new(false),
                reported: AtomicBool::new(false),
                _lock: lock,
            },
            state,
        ))
    }

    /// Appends one completed grid point, flushed immediately so a kill
    /// right after loses nothing. Append failures are swallowed: a
    /// full disk must not take down the sweep, it only costs
    /// resumability.
    pub fn record(&self, index: usize, key: u64) {
        let span = telemetry::span("journal.flush_s");
        // Also a tree span, so the flush shows up nested in its job's
        // trace (the flat span above keeps feeding the histogram).
        let tree = telemetry::span_tree("journal.flush");
        let line = format!("done {index} {}\n", key_hex(key));
        // A job that panicked while appending poisons this mutex; the
        // file itself is still sound (each line is written whole and a
        // torn tail is tolerated on resume), so recover the guard and
        // keep journaling — one bad job must not cost the durability
        // of every job after it.
        let mut file = self.file.lock().unwrap_or_else(|e| {
            if !self.poisoned.swap(true, Ordering::Relaxed) {
                telemetry::counter_add("journal.lock_recoveries", 1);
            }
            e.into_inner()
        });
        let _ = file.write_all(line.as_bytes()).and_then(|()| file.flush());
        drop(file);
        tree.finish();
        span.finish();
        telemetry::counter_add("journal.records", 1);
    }

    /// The typed poisoning report, surfaced at most once: `Some` on the
    /// first call after a panic poisoned (and [`Self::record`]
    /// recovered) the journal lock, `None` before that and ever after.
    /// Long-lived callers poll this after each sweep and log it —
    /// instead of the pre-recovery behaviour where every later flush
    /// re-panicked.
    pub fn poison_error(&self) -> Option<EngineError> {
        (self.poisoned.load(Ordering::Relaxed) && !self.reported.swap(true, Ordering::Relaxed))
            .then(|| EngineError::LockPoisoned {
                what: "sweep journal",
                path: self.path.display().to_string(),
            })
    }
}

/// Journal format version; bump on layout changes.
const JOURNAL_VERSION: u32 = 1;

fn encode_value(w: &mut Wire, value: &ParamValue) {
    match value {
        ParamValue::Number(n) => {
            w.count("num", 1);
            w.f64(*n);
        }
        ParamValue::List(xs) => {
            w.count("list", xs.len());
            for &x in xs {
                w.f64(x);
            }
        }
        ParamValue::Text(t) => {
            w.count("text", 1);
            w.string(t);
        }
    }
}

fn decode_value(r: &mut WireReader<'_>) -> Option<ParamValue> {
    match r.tagged_count()? {
        ("num", 1) => Some(ParamValue::Number(r.f64()?)),
        ("list", len) => {
            let mut xs = Vec::with_capacity(len);
            for _ in 0..len {
                xs.push(r.f64()?);
            }
            Some(ParamValue::List(xs))
        }
        ("text", 1) => Some(ParamValue::Text(r.string()?.to_owned())),
        _ => None,
    }
}

fn encode_header(plan: &SweepPlan) -> String {
    let mut w = Wire::new();
    w.count("mramsim-journal", JOURNAL_VERSION as usize);
    w.string(plan.scenario());
    w.string(&key_hex(SweepJournal::plan_hash(plan)));
    let fixed: Vec<(&str, &ParamValue)> = plan.fixed().iter().collect();
    w.count("fixed", fixed.len());
    for (name, value) in fixed {
        w.string(name);
        encode_value(&mut w, value);
    }
    w.count("axes", plan.axes().len());
    for (name, values) in plan.axes() {
        w.string(name);
        w.count("vals", values.len());
        for &v in values {
            w.f64(v);
        }
    }
    w.count("log", 0); // Marks the end of the header.
    w.0
}

fn parse_journal(text: &str) -> Option<JournalState> {
    let mut r = WireReader::new(text);
    if r.count("mramsim-journal")? != JOURNAL_VERSION as usize {
        return None;
    }
    let scenario = r.string()?.to_owned();
    let recorded_hash = parse_key_hex(r.string()?)?;
    let n_fixed = r.count("fixed")?;
    let mut plan = SweepPlan::new(&scenario);
    for _ in 0..n_fixed {
        let name = r.string()?.to_owned();
        plan = plan.fix(&name, decode_value(&mut r)?);
    }
    let n_axes = r.count("axes")?;
    for _ in 0..n_axes {
        let name = r.string()?.to_owned();
        let n_vals = r.count("vals")?;
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            values.push(r.f64()?);
        }
        plan = plan.axis(&name, values);
    }
    if r.count("log")? != 0 {
        return None;
    }
    // The recorded hash pins the header against corruption that still
    // parses (e.g. a truncated-then-rewritten file).
    if SweepJournal::plan_hash(&plan) != recorded_hash {
        return None;
    }
    // The done log: well-formed lines count; a truncated trailing line
    // (killed mid-append) is discarded, anything else malformed is
    // ignored defensively — a lost `done` line only costs one disk-hit
    // replay, never correctness.
    let mut done = BTreeMap::new();
    for line in r.remainder().lines() {
        let Some(rest) = line.strip_prefix("done ") else {
            continue;
        };
        let Some((index, key)) = rest.split_once(' ') else {
            continue;
        };
        if let (Ok(index), Some(key)) = (index.parse::<usize>(), parse_key_hex(key)) {
            done.insert(index, key);
        }
    }
    Some(JournalState { plan, done })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TempDir;

    fn plan() -> SweepPlan {
        SweepPlan::new("array-wer")
            .fix("rows", 4.0)
            .fix("pattern", "checkerboard")
            .fix("grid", vec![1.0, 0.5])
            .axis("pitch", vec![60.0, 70.0, 90.0])
            .axis("trajectories", vec![32.0, 64.0])
    }

    #[test]
    fn run_ids_are_stable_and_plan_sensitive() {
        assert_eq!(SweepJournal::run_id(&plan()), SweepJournal::run_id(&plan()));
        assert!(SweepJournal::run_id(&plan()).starts_with("array-wer-"));
        let other = plan().fix("seed", 9.0);
        assert_ne!(SweepJournal::run_id(&plan()), SweepJournal::run_id(&other));
        let reordered = SweepPlan::new("array-wer")
            .fix("rows", 4.0)
            .fix("pattern", "checkerboard")
            .fix("grid", vec![1.0, 0.5])
            .axis("pitch", vec![60.0, 70.0, 91.0])
            .axis("trajectories", vec![32.0, 64.0]);
        assert_ne!(
            SweepJournal::run_id(&plan()),
            SweepJournal::run_id(&reordered),
            "axis values must move the run id"
        );
    }

    #[test]
    fn journal_round_trips_plan_and_done_log() {
        let dir = TempDir::new("roundtrip");
        let path = SweepJournal::path_for(&dir.0, &SweepJournal::run_id(&plan()));
        let journal = SweepJournal::create(&path, &plan()).unwrap();
        journal.record(0, 0xdead_beef);
        journal.record(4, 42);
        drop(journal);

        let (journal, state) = SweepJournal::resume(&path).unwrap();
        assert_eq!(state.plan, plan(), "plan must reconstruct bit-exactly");
        assert_eq!(state.done, BTreeMap::from([(0, 0xdead_beef), (4, 42)]));
        // Appends after resume extend the same log.
        journal.record(5, 7);
        drop(journal);
        let (_, state) = SweepJournal::resume(&path).unwrap();
        assert_eq!(state.done.len(), 3);
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let dir = TempDir::new("truncated");
        let path = dir.0.join("run.journal");
        let journal = SweepJournal::create(&path, &plan()).unwrap();
        journal.record(0, 1);
        journal.record(1, 2);
        drop(journal);
        // Simulate a kill mid-append: chop the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 7]).unwrap();
        let (_, state) = SweepJournal::resume(&path).unwrap();
        assert_eq!(state.done, BTreeMap::from([(0, 1)]));
    }

    #[test]
    fn absurd_counts_in_a_journal_fail_without_panicking() {
        // A corrupt element count must surface as the documented
        // Persistence error, not a capacity-overflow panic in
        // `Vec::with_capacity` (regression).
        let dir = TempDir::new("absurd");
        let path = dir.0.join("run.journal");
        SweepJournal::create(&path, &plan()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        for huge in [format!("vals {}", u64::MAX), "vals 30000".to_owned()] {
            fs::write(&path, text.replacen("vals 3", &huge, 1)).unwrap();
            assert!(
                matches!(
                    SweepJournal::resume(&path),
                    Err(EngineError::Persistence { .. })
                ),
                "{huge} must be a hard error"
            );
        }
    }

    #[test]
    fn live_run_collision_is_a_typed_error() {
        let dir = TempDir::new("collide");
        let path = SweepJournal::path_for(&dir.0, &SweepJournal::run_id(&plan()));
        let first = SweepJournal::create(&path, &plan()).unwrap();
        // While the first holder lives, both create and resume refuse.
        match SweepJournal::create(&path, &plan()) {
            Err(EngineError::RunInFlight { run_id, pid, .. }) => {
                assert_eq!(run_id, SweepJournal::run_id(&plan()));
                assert_eq!(pid, std::process::id());
            }
            other => panic!("expected RunInFlight, got {other:?}"),
        }
        assert!(matches!(
            SweepJournal::resume(&path),
            Err(EngineError::RunInFlight { .. })
        ));
        // The collision must not have clobbered the live journal.
        first.record(0, 1);
        drop(first);
        let (_, state) = SweepJournal::resume(&path).unwrap();
        assert_eq!(state.done, BTreeMap::from([(0, 1)]));
    }

    #[test]
    fn stale_locks_from_dead_processes_are_reclaimed() {
        let dir = TempDir::new("stale");
        let path = dir.0.join("run.journal");
        drop(SweepJournal::create(&path, &plan()).unwrap());
        // Forge a lock owned by a pid that cannot exist (beyond any
        // real pid_max), as if a holder was killed before cleanup.
        let lock_path = RunLock::path_for(&path);
        fs::write(&lock_path, "4294000000\n").unwrap();
        let (journal, _) = SweepJournal::resume(&path).expect("stale lock must be stolen");
        drop(journal);
        assert!(!lock_path.exists(), "drop must release the lock");
        // An unreadable lock is a hard error, never silently stolen.
        fs::write(&lock_path, "not-a-pid\n").unwrap();
        assert!(matches!(
            SweepJournal::resume(&path),
            Err(EngineError::Persistence { .. })
        ));
    }

    #[test]
    fn poisoned_journal_lock_recovers_and_reports_once() {
        let dir = TempDir::new("poison");
        let path = dir.0.join("run.journal");
        let journal = SweepJournal::create(&path, &plan()).unwrap();
        journal.record(0, 1);
        // Panic while holding the lock, as a panicking job would.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = journal.file.lock().unwrap();
            panic!("job panic with the journal lock held");
        }));
        assert!(journal.file.is_poisoned());
        // Later records still land...
        journal.record(1, 2);
        journal.record(2, 3);
        // ...and the poisoning surfaces as a typed error exactly once.
        assert!(matches!(
            journal.poison_error(),
            Some(EngineError::LockPoisoned {
                what: "sweep journal",
                ..
            })
        ));
        assert_eq!(journal.poison_error(), None);
        drop(journal);
        let (_, state) = SweepJournal::resume(&path).unwrap();
        assert_eq!(state.done, BTreeMap::from([(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    fn corrupt_or_missing_headers_are_hard_errors() {
        let dir = TempDir::new("corrupt");
        let path = dir.0.join("run.journal");
        assert!(matches!(
            SweepJournal::resume(&path),
            Err(EngineError::Persistence { .. })
        ));
        SweepJournal::create(&path, &plan()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // Structurally break a value line: a hard error, not a guess.
        fs::write(&path, text.replacen("f ", "f 0", 1)).unwrap();
        assert!(matches!(
            SweepJournal::resume(&path),
            Err(EngineError::Persistence { .. })
        ));
        // Flip an axis value (60.0 → 62.0): the header still parses,
        // but the recorded plan hash no longer matches.
        let bits_60 = mramsim_numerics::hash::key_hex(60.0f64.to_bits());
        let bits_62 = mramsim_numerics::hash::key_hex(62.0f64.to_bits());
        assert!(text.contains(&bits_60));
        fs::write(&path, text.replacen(&bits_60, &bits_62, 1)).unwrap();
        assert!(matches!(
            SweepJournal::resume(&path),
            Err(EngineError::Persistence { .. })
        ));
    }
}
