//! Unified error type for the execution engine.

use core::fmt;

/// Errors produced by the scenario-execution engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// No scenario with this id is registered.
    UnknownScenario {
        /// The requested id.
        id: String,
    },
    /// A parameter name is not declared by the scenario.
    UnknownParameter {
        /// The scenario id.
        scenario: String,
        /// The unrecognised parameter name.
        name: String,
    },
    /// A parameter value violated a constraint.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The underlying model failed while running a scenario.
    Scenario {
        /// The scenario id.
        scenario: String,
        /// The rendered model error.
        message: String,
    },
    /// The persistence layer (disk cache or sweep journal) failed in a
    /// way that cannot be papered over by recomputing — e.g. the cache
    /// directory cannot be created, or a journal named by `--resume`
    /// does not exist or belongs to a different sweep. (Corrupt cache
    /// *entries* never surface here; they fall back to recompute.)
    Persistence {
        /// The file or directory involved.
        path: String,
        /// Human-readable description of the failure.
        message: String,
    },
    /// Another live process (or thread) is already executing this run
    /// id — the journal's run lock is held. Two writers interleaving
    /// `done` lines into the same `<run-id>.journal` would corrupt
    /// both, so the collision is detected up front. Join the in-flight
    /// run (the serve API does this automatically) or wait for it.
    RunInFlight {
        /// The colliding run id.
        run_id: String,
        /// Process id recorded in the live lock.
        pid: u32,
        /// The lock file location (delete it only if the holder is
        /// genuinely gone).
        path: String,
    },
    /// A worker panicked while holding an engine lock; the lock was
    /// recovered and the run continued, but the panic itself still
    /// needs surfacing exactly once (a long-lived server must not
    /// panic-cascade on every later flush).
    LockPoisoned {
        /// What the lock protects (e.g. `sweep journal`).
        what: &'static str,
        /// The file involved, when the lock guards one.
        path: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownScenario { id } => write!(f, "unknown scenario `{id}`"),
            Self::UnknownParameter { scenario, name } => {
                write!(f, "scenario `{scenario}` has no parameter `{name}`")
            }
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Self::Scenario { scenario, message } => {
                write!(f, "scenario `{scenario}` failed: {message}")
            }
            Self::Persistence { path, message } => {
                write!(f, "persistence failure at `{path}`: {message}")
            }
            Self::RunInFlight { run_id, pid, path } => {
                write!(
                    f,
                    "run `{run_id}` is already in flight (pid {pid} holds the lock at `{path}`); \
                     wait for it, join it through the serve API, or delete the lock if the \
                     holder is gone"
                )
            }
            Self::LockPoisoned { what, path } => {
                write!(
                    f,
                    "a worker panicked while holding the {what} lock at `{path}`; \
                     the lock was recovered and later writes continued"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<EngineError>();
    }

    #[test]
    fn messages_name_the_scenario() {
        let e = EngineError::UnknownScenario { id: "nope".into() };
        assert!(e.to_string().contains("nope"));
        let e = EngineError::UnknownParameter {
            scenario: "fig4b".into(),
            name: "pitchx".into(),
        };
        assert!(e.to_string().contains("fig4b") && e.to_string().contains("pitchx"));
    }
}
