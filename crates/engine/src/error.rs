//! Unified error type for the execution engine.

use core::fmt;

/// Errors produced by the scenario-execution engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// No scenario with this id is registered.
    UnknownScenario {
        /// The requested id.
        id: String,
    },
    /// A parameter name is not declared by the scenario.
    UnknownParameter {
        /// The scenario id.
        scenario: String,
        /// The unrecognised parameter name.
        name: String,
    },
    /// A parameter value violated a constraint.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The underlying model failed while running a scenario.
    Scenario {
        /// The scenario id.
        scenario: String,
        /// The rendered model error.
        message: String,
    },
    /// The persistence layer (disk cache or sweep journal) failed in a
    /// way that cannot be papered over by recomputing — e.g. the cache
    /// directory cannot be created, or a journal named by `--resume`
    /// does not exist or belongs to a different sweep. (Corrupt cache
    /// *entries* never surface here; they fall back to recompute.)
    Persistence {
        /// The file or directory involved.
        path: String,
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownScenario { id } => write!(f, "unknown scenario `{id}`"),
            Self::UnknownParameter { scenario, name } => {
                write!(f, "scenario `{scenario}` has no parameter `{name}`")
            }
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Self::Scenario { scenario, message } => {
                write!(f, "scenario `{scenario}` failed: {message}")
            }
            Self::Persistence { path, message } => {
                write!(f, "persistence failure at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<EngineError>();
    }

    #[test]
    fn messages_name_the_scenario() {
        let e = EngineError::UnknownScenario { id: "nope".into() };
        assert!(e.to_string().contains("nope"));
        let e = EngineError::UnknownParameter {
            scenario: "fig4b".into(),
            name: "pitchx".into(),
        };
        assert!(e.to_string().contains("fig4b") && e.to_string().contains("pitchx"));
    }
}
