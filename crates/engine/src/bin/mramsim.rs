//! The `mramsim` CLI: list, run, sweep, and report over every
//! registered scenario.
//!
//! ```text
//! mramsim list
//! mramsim run fig4a --pitch 120 --format csv
//! mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55 --workers 8
//! mramsim report fig4a explore
//! ```
//!
//! Any `--name value` pair maps onto a declared scenario parameter;
//! values may be numbers (`90`), lists (`20,35,55`), or stepped ranges
//! (`60..240:20`). In `sweep`, multi-valued parameters become grid
//! axes and scalars become fixed overrides.

#![deny(unsafe_code)]

use mramsim_engine::store::DiskStore;
use mramsim_engine::{
    parse_value, Engine, EngineError, JobEvent, ParamSet, ParamValue, Registry, SweepJournal,
    SweepOptions, SweepPlan,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
mramsim — unified scenario-execution engine for the STT-MRAM
magnetic-coupling reproduction (Wu et al., DATE 2020)

USAGE:
    mramsim list                         show scenarios and parameters
    mramsim run <scenario> [OPTIONS]     run one scenario
    mramsim sweep <scenario> [OPTIONS]   run a parameter grid in parallel
    mramsim report [scenario...]         Markdown report (default: all)
    mramsim help                         this text

OPTIONS:
    --<param> <value>    set a scenario parameter; value forms:
                             90           number
                             20,35,55     list
                             60..240:20   inclusive range with step
                         in `sweep`, lists/ranges become grid axes
    --format <md|csv|chart>   output format (default md)
    --workers <n>             sweep worker threads (default: all cores)
    --cache-dir <path|off>    persistent result cache directory
                              (default: $MRAMSIM_CACHE_DIR, else
                              ~/.cache/mramsim; `off` disables disk —
                              MRAMSIM_CACHE_DIR=off does too)
    --cache-cap <n>           in-memory cache capacity in entries
    --limit <n>               sweep: compute at most n new points,
                              journal them, and stop (resume later)
    --resume <run>            sweep: continue a journaled run; the plan
                              is reloaded from the journal, finished
                              points are served from the disk cache

PERSISTENT CACHE & RESUMABLE SWEEPS:
    Results are content-addressed by (scenario, full parameter
    fingerprint) plus a schema version and persisted under
    --cache-dir, so a re-run in a new process is served from disk
    with zero recomputation. Every sweep also writes a checkpoint
    journal named after its run id (printed on stderr); an
    interrupted campaign continues with

        mramsim sweep --resume <run-id>

    and produces output byte-identical to an uninterrupted run.

EXAMPLES:
    mramsim run explore --ecd 35 --temperature_c 85
    mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55
    mramsim sweep faults --pitch 55..90:5 --format csv

MONTE-CARLO DYNAMICS (s-LLGS trajectory ensembles):
    Seeded and deterministic: --trajectories/--seed/--dt_ps are part of
    the result's cache key, so repeats are served from the cache.

    mramsim run wer-mc --trajectories 4096 --seed 7
    mramsim sweep wer-mc --pulse_ns 0.8..2.0:0.2 --trajectories 2048
    mramsim run switch-traj --overdrive 3 --span_ns 15

ARRAY WRITE CAMPAIGNS (per-cell Monte-Carlo fault maps):
    array-wer writes every cell of an N x M array to the complement of
    its stored pattern bit, each cell under the stray field of its own
    neighbourhood, via per-cell s-LLGS WER ensembles. --rows/--cols/
    --pattern/--trajectories are cache-key parameters; sweep --pitch
    for WER-vs-density curves.

    mramsim run array-wer --rows 8 --cols 8 --pattern checkerboard
    mramsim sweep array-wer --pitch 60,70,90 --trajectories 256
    mramsim run array-wer --pitch 55 --voltage_v 0.8 --format chart

ABLATIONS:
    Scenarios that build a device (fig4a, fig4b point mode, faults)
    accept the field-model knobs for accuracy/speed studies:
    --segments <n>   Biot-Savart segments per loop (default 256)
    --exact 1        exact elliptic-integral loops instead of polygons

    mramsim run fig4a --segments 64
    mramsim sweep fig4b --pitch 60..240:20 --segments 32,256 --exact 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `mramsim help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Writes to stdout, exiting quietly when the reader has gone away
/// (e.g. `mramsim list | head`) — `println!` would panic on the
/// broken pipe instead.
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            emit(USAGE);
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parsed `--name value` options, with the engine/runtime flags split
/// off from scenario parameters.
struct Options {
    scenario: Option<String>,
    params: Vec<(String, ParamValue)>,
    format: String,
    workers: Option<usize>,
    /// Raw `--cache-dir` value (`off` disables the disk tier).
    cache_dir: Option<String>,
    cache_cap: Option<usize>,
    limit: Option<usize>,
    resume: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let scenario = args.first().filter(|a| !a.starts_with("--")).cloned();
    let mut options = Options {
        scenario,
        params: Vec::new(),
        format: "md".to_owned(),
        workers: None,
        cache_dir: None,
        cache_cap: None,
        limit: None,
        resume: None,
    };
    let mut rest = &args[usize::from(options.scenario.is_some())..];
    let integer = |name: &str, value: &str| {
        value
            .parse::<usize>()
            .map_err(|_| format!("`--{name}` needs an integer, got `{value}`"))
    };
    while let Some(flag) = rest.first() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--option`, got `{flag}`"))?;
        let value = rest
            .get(1)
            .ok_or_else(|| format!("`--{name}` needs a value"))?;
        match name {
            "format" => {
                if !matches!(value.as_str(), "md" | "csv" | "chart") {
                    return Err(format!(
                        "`--format` must be md, csv, or chart, got `{value}`"
                    ));
                }
                value.clone_into(&mut options.format);
            }
            "workers" => options.workers = Some(integer(name, value)?),
            "cache-dir" => options.cache_dir = Some(value.clone()),
            "cache-cap" => options.cache_cap = Some(integer(name, value)?),
            "limit" => options.limit = Some(integer(name, value)?),
            "resume" => options.resume = Some(value.clone()),
            _ => {
                let parsed = parse_value(name, value).map_err(|e| e.to_string())?;
                options.params.push((name.to_owned(), parsed));
            }
        }
        rest = &rest[2..];
    }
    Ok(options)
}

/// The default disk-cache location for commands that did not pass
/// `--cache-dir`. `MRAMSIM_CACHE_DIR=off` disables persistence
/// globally — the only opt-out `report` has, since it takes no flags.
fn default_cache_dir() -> Option<PathBuf> {
    match std::env::var("MRAMSIM_CACHE_DIR") {
        Ok(v) if v == "off" => None,
        _ => Some(DiskStore::default_dir()),
    }
}

/// The disk-cache directory to use: the `--cache-dir` value, `None`
/// for `off`, or the default location.
fn resolve_cache_dir(options: &Options) -> Option<PathBuf> {
    match options.cache_dir.as_deref() {
        Some("off") => None,
        Some(dir) => Some(PathBuf::from(dir)),
        None => default_cache_dir(),
    }
}

fn base_engine(options: &Options) -> Engine {
    let mut engine = Engine::standard();
    if let Some(n) = options.workers {
        engine = engine.with_workers(n);
    }
    if let Some(cap) = options.cache_cap {
        engine = engine.with_cache_capacity(cap);
    }
    engine
}

fn build_engine(options: &Options, cache_dir: Option<&Path>) -> Result<Engine, String> {
    let Some(dir) = cache_dir else {
        return Ok(base_engine(options));
    };
    match base_engine(options).with_disk_cache(dir) {
        Ok(engine) => Ok(engine),
        // An unusable *default* directory (read-only $HOME, sandbox)
        // degrades to memory-only with a warning — persistence is an
        // optimisation there. An explicitly requested directory that
        // cannot be used is an error the user needs to hear about.
        Err(e) if options.cache_dir.is_none() => {
            eprintln!("warning: persistent cache disabled: {e}");
            Ok(base_engine(options))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_list() -> Result<(), String> {
    let registry = Registry::standard();
    let mut out = format!("{} registered scenario(s):\n\n", registry.len());
    for scenario in registry.iter() {
        out.push_str(&format!("  {:<8} {}\n", scenario.id(), scenario.summary()));
        for spec in scenario.params() {
            out.push_str(&format!(
                "           --{} <{}>  {}\n",
                spec.name,
                spec.default.display(),
                spec.doc
            ));
        }
        out.push('\n');
    }
    emit(&out);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    if options.resume.is_some() || options.limit.is_some() {
        return Err("`--resume`/`--limit` only apply to `sweep`".into());
    }
    let scenario = options
        .scenario
        .clone()
        .ok_or("`run` needs a scenario id")?;
    let cache_dir = resolve_cache_dir(&options);
    let engine = build_engine(&options, cache_dir.as_deref())?;
    let mut overrides = ParamSet::new();
    for (name, value) in options.params {
        overrides.insert(&name, value);
    }
    let outcome = engine
        .run(&scenario, &overrides)
        .map_err(|e: EngineError| e.to_string())?;
    match options.format.as_str() {
        "csv" => emit(&outcome.output.to_csv()),
        "chart" => match &outcome.output.chart {
            Some(chart) => emit(chart),
            None => emit(&outcome.output.to_markdown()),
        },
        _ => emit(&outcome.output.to_markdown()),
    }
    eprintln!(
        "ran `{scenario}` in {:.1?}{}",
        outcome.duration,
        if outcome.disk_hit {
            " (disk-cache hit)"
        } else if outcome.cache_hit {
            " (cache hit)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let cache_dir = resolve_cache_dir(&options);
    let engine = build_engine(&options, cache_dir.as_deref())?;

    let (plan, journal) = if let Some(run_id) = &options.resume {
        if options.scenario.is_some() || !options.params.is_empty() {
            return Err(
                "`--resume` reloads the journaled plan; do not pass a scenario or parameters"
                    .into(),
            );
        }
        // `store()` is None for `--cache-dir off` *and* when the
        // default directory was unusable — resuming cannot work
        // without the persisted results either way.
        if engine.store().is_none() {
            return Err(
                "`--resume` needs a usable disk cache (do not pass `--cache-dir off`)".into(),
            );
        }
        let dir = cache_dir.as_ref().expect("store implies a cache dir");
        let (journal, state) =
            SweepJournal::resume(SweepJournal::path_for(dir, run_id)).map_err(|e| e.to_string())?;
        eprintln!(
            "resuming `{run_id}`: {}/{} point(s) already journaled",
            state.done.len(),
            state.plan.len(),
        );
        (state.plan, Some(journal))
    } else {
        let scenario = options
            .scenario
            .clone()
            .ok_or("`sweep` needs a scenario id (or `--resume <run>`)")?;
        let mut plan = SweepPlan::new(&scenario);
        for (name, value) in options.params {
            plan = match value {
                ParamValue::List(values) if values.len() > 1 => plan.axis(&name, values),
                // A degenerate one-point range/list fixes a scalar; list
                // parameters coerce a Number back via `ParamSet::list`.
                ParamValue::List(values) if values.len() == 1 => plan.fix(&name, values[0]),
                other => plan.fix(&name, other),
            };
        }
        if plan.axes().is_empty() {
            return Err("`sweep` needs at least one multi-valued axis \
                        (e.g. `--pitch 60..240:20`)"
                .into());
        }
        // `--limit` exists to slice a resumable campaign; without a
        // store the computed slice would die with the process and the
        // "resume to continue" advice would be unfollowable.
        if options.limit.is_some() && engine.store().is_none() {
            return Err(
                "`--limit` slices a resumable campaign, which needs a usable disk cache \
                 (do not pass `--cache-dir off`)"
                    .into(),
            );
        }
        // Validate the plan before touching the journal, so a typo'd
        // scenario or parameter does not leave resumable-looking
        // debris under runs/.
        let specs = engine
            .registry()
            .get(&scenario)
            .map_err(|e| e.to_string())?
            .params();
        for name in plan
            .axes()
            .iter()
            .map(|(name, _)| name.as_str())
            .chain(plan.fixed().iter().map(|(name, _)| name))
        {
            if !specs.iter().any(|s| s.name == name) {
                return Err(format!("scenario `{scenario}` has no parameter `{name}`"));
            }
        }
        // With the disk cache on, every sweep is checkpointed: the
        // journal captures the plan and streams finished points. No
        // store (disabled, or default dir unusable) ⇒ no journal —
        // there would be nothing on disk to resume from anyway.
        let journal = match (&cache_dir, engine.store().is_some()) {
            (Some(dir), true) => {
                let path = SweepJournal::path_for(dir, &SweepJournal::run_id(&plan));
                Some(SweepJournal::create(path, &plan).map_err(|e| e.to_string())?)
            }
            _ => None,
        };
        (plan, journal)
    };

    let record = |event: &JobEvent<'_>| {
        if event.ok {
            if let Some(journal) = &journal {
                journal.record(event.index, event.key);
            }
        }
    };
    let sweep_options = SweepOptions {
        limit: options.limit,
        on_done: Some(&record),
    };
    let outcome = engine
        .sweep_with(&plan, &sweep_options)
        .map_err(|e| e.to_string())?;
    let summary = outcome.summary_table();
    match options.format.as_str() {
        "csv" => emit(&summary.to_csv()),
        _ => emit(&summary.to_markdown()),
    }
    let skipped = if outcome.skipped > 0 {
        format!(", {} skipped (job limit)", outcome.skipped)
    } else {
        String::new()
    };
    let evictions = engine.cache_stats().evictions;
    let pressure = if evictions > 0 {
        format!(", {evictions} memory eviction(s)")
    } else {
        String::new()
    };
    eprintln!(
        "swept `{}`: {} point(s) on {} worker(s) in {:.1?} — {} cache hit(s) ({} from disk), {} error(s){skipped}{pressure}",
        outcome.scenario,
        outcome.jobs.len(),
        engine.workers(),
        outcome.duration,
        outcome.cache_hits,
        outcome.disk_hits,
        outcome.errors,
    );
    if let Some(journal) = &journal {
        let run_id = SweepJournal::run_id(&plan);
        eprintln!(
            "run `{run_id}` journaled at {} — continue with `mramsim sweep --resume {run_id}`",
            journal.path().display()
        );
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("`report` takes scenario ids only, got `{flag}`"));
    }
    // Reports also read and feed the persistent cache (falling back
    // to memory-only, with a warning, when the default directory is
    // unusable — the same degradation run/sweep announce).
    let engine = match default_cache_dir() {
        Some(dir) => match Engine::standard().with_disk_cache(dir) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("warning: persistent cache disabled: {e}");
                Engine::standard()
            }
        },
        None => Engine::standard(),
    };
    let ids: Vec<&str> = args.iter().map(String::as_str).collect();
    for id in &ids {
        engine.registry().get(id).map_err(|e| e.to_string())?;
    }
    emit(&engine.report(&ids));
    Ok(())
}
