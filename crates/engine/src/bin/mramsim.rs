//! The `mramsim` CLI: list, run, sweep, and report over every
//! registered scenario.
//!
//! ```text
//! mramsim list
//! mramsim run fig4a --pitch 120 --format csv
//! mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55 --workers 8
//! mramsim report fig4a explore
//! ```
//!
//! Any `--name value` pair maps onto a declared scenario parameter;
//! values may be numbers (`90`), lists (`20,35,55`), or stepped ranges
//! (`60..240:20`). In `sweep`, multi-valued parameters become grid
//! axes and scalars become fixed overrides.

#![deny(unsafe_code)]

use mramsim_engine::{parse_value, Engine, EngineError, ParamSet, ParamValue, Registry, SweepPlan};
use std::process::ExitCode;

const USAGE: &str = "\
mramsim — unified scenario-execution engine for the STT-MRAM
magnetic-coupling reproduction (Wu et al., DATE 2020)

USAGE:
    mramsim list                         show scenarios and parameters
    mramsim run <scenario> [OPTIONS]     run one scenario
    mramsim sweep <scenario> [OPTIONS]   run a parameter grid in parallel
    mramsim report [scenario...]         Markdown report (default: all)
    mramsim help                         this text

OPTIONS:
    --<param> <value>    set a scenario parameter; value forms:
                             90           number
                             20,35,55     list
                             60..240:20   inclusive range with step
                         in `sweep`, lists/ranges become grid axes
    --format <md|csv|chart>   output format (default md)
    --workers <n>             sweep worker threads (default: all cores)

EXAMPLES:
    mramsim run explore --ecd 35 --temperature_c 85
    mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55
    mramsim sweep faults --pitch 55..90:5 --format csv

MONTE-CARLO DYNAMICS (s-LLGS trajectory ensembles):
    Seeded and deterministic: --trajectories/--seed/--dt_ps are part of
    the result's cache key, so repeats are served from the cache.

    mramsim run wer-mc --trajectories 4096 --seed 7
    mramsim sweep wer-mc --pulse_ns 0.8..2.0:0.2 --trajectories 2048
    mramsim run switch-traj --overdrive 3 --span_ns 15

ARRAY WRITE CAMPAIGNS (per-cell Monte-Carlo fault maps):
    array-wer writes every cell of an N x M array to the complement of
    its stored pattern bit, each cell under the stray field of its own
    neighbourhood, via per-cell s-LLGS WER ensembles. --rows/--cols/
    --pattern/--trajectories are cache-key parameters; sweep --pitch
    for WER-vs-density curves.

    mramsim run array-wer --rows 8 --cols 8 --pattern checkerboard
    mramsim sweep array-wer --pitch 60,70,90 --trajectories 256
    mramsim run array-wer --pitch 55 --voltage_v 0.8 --format chart

ABLATIONS:
    Scenarios that build a device (fig4a, fig4b point mode, faults)
    accept the field-model knobs for accuracy/speed studies:
    --segments <n>   Biot-Savart segments per loop (default 256)
    --exact 1        exact elliptic-integral loops instead of polygons

    mramsim run fig4a --segments 64
    mramsim sweep fig4b --pitch 60..240:20 --segments 32,256 --exact 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `mramsim help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Writes to stdout, exiting quietly when the reader has gone away
/// (e.g. `mramsim list | head`) — `println!` would panic on the
/// broken pipe instead.
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            emit(USAGE);
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parsed `--name value` options, with `format` and `workers` split
/// off from scenario parameters.
struct Options {
    scenario: String,
    params: Vec<(String, ParamValue)>,
    format: String,
    workers: Option<usize>,
}

fn parse_options(args: &[String], command: &str) -> Result<Options, String> {
    let scenario = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("`{command}` needs a scenario id"))?
        .clone();
    let mut params = Vec::new();
    let mut format = "md".to_owned();
    let mut workers = None;
    let mut rest = &args[1..];
    while let Some(flag) = rest.first() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--option`, got `{flag}`"))?;
        let value = rest
            .get(1)
            .ok_or_else(|| format!("`--{name}` needs a value"))?;
        match name {
            "format" => {
                if !matches!(value.as_str(), "md" | "csv" | "chart") {
                    return Err(format!(
                        "`--format` must be md, csv, or chart, got `{value}`"
                    ));
                }
                value.clone_into(&mut format);
            }
            "workers" => {
                workers = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("`--workers` needs an integer, got `{value}`"))?,
                );
            }
            _ => {
                let parsed = parse_value(name, value).map_err(|e| e.to_string())?;
                params.push((name.to_owned(), parsed));
            }
        }
        rest = &rest[2..];
    }
    Ok(Options {
        scenario,
        params,
        format,
        workers,
    })
}

fn build_engine(workers: Option<usize>) -> Engine {
    match workers {
        Some(n) => Engine::standard().with_workers(n),
        None => Engine::standard(),
    }
}

fn cmd_list() -> Result<(), String> {
    let registry = Registry::standard();
    let mut out = format!("{} registered scenario(s):\n\n", registry.len());
    for scenario in registry.iter() {
        out.push_str(&format!("  {:<8} {}\n", scenario.id(), scenario.summary()));
        for spec in scenario.params() {
            out.push_str(&format!(
                "           --{} <{}>  {}\n",
                spec.name,
                spec.default.display(),
                spec.doc
            ));
        }
        out.push('\n');
    }
    emit(&out);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let options = parse_options(args, "run")?;
    let engine = build_engine(options.workers);
    let mut overrides = ParamSet::new();
    for (name, value) in options.params {
        overrides.insert(&name, value);
    }
    let outcome = engine
        .run(&options.scenario, &overrides)
        .map_err(|e: EngineError| e.to_string())?;
    match options.format.as_str() {
        "csv" => emit(&outcome.output.to_csv()),
        "chart" => match &outcome.output.chart {
            Some(chart) => emit(chart),
            None => emit(&outcome.output.to_markdown()),
        },
        _ => emit(&outcome.output.to_markdown()),
    }
    eprintln!(
        "ran `{}` in {:.1?}{}",
        options.scenario,
        outcome.duration,
        if outcome.cache_hit {
            " (cache hit)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let options = parse_options(args, "sweep")?;
    let engine = build_engine(options.workers);
    let mut plan = SweepPlan::new(&options.scenario);
    for (name, value) in options.params {
        plan = match value {
            ParamValue::List(values) if values.len() > 1 => plan.axis(&name, values),
            // A degenerate one-point range/list fixes a scalar; list
            // parameters coerce a Number back via `ParamSet::list`.
            ParamValue::List(values) if values.len() == 1 => plan.fix(&name, values[0]),
            other => plan.fix(&name, other),
        };
    }
    if plan.axes().is_empty() {
        return Err("`sweep` needs at least one multi-valued axis \
                    (e.g. `--pitch 60..240:20`)"
            .into());
    }
    let outcome = engine.sweep(&plan).map_err(|e| e.to_string())?;
    let summary = outcome.summary_table();
    match options.format.as_str() {
        "csv" => emit(&summary.to_csv()),
        _ => emit(&summary.to_markdown()),
    }
    eprintln!(
        "swept `{}`: {} point(s) on {} worker(s) in {:.1?} — {} cache hit(s), {} error(s)",
        outcome.scenario,
        outcome.jobs.len(),
        engine.workers(),
        outcome.duration,
        outcome.cache_hits,
        outcome.errors,
    );
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("`report` takes scenario ids only, got `{flag}`"));
    }
    let engine = Engine::standard();
    let ids: Vec<&str> = args.iter().map(String::as_str).collect();
    for id in &ids {
        engine.registry().get(id).map_err(|e| e.to_string())?;
    }
    emit(&engine.report(&ids));
    Ok(())
}
