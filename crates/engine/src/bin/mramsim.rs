//! The `mramsim` CLI: list, run, sweep, and report over every
//! registered scenario.
//!
//! ```text
//! mramsim list
//! mramsim run fig4a --pitch 120 --format csv
//! mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55 --workers 8
//! mramsim report fig4a explore
//! ```
//!
//! Any `--name value` pair maps onto a declared scenario parameter;
//! values may be numbers (`90`), lists (`20,35,55`), or stepped ranges
//! (`60..240:20`). In `sweep`, multi-valued parameters become grid
//! axes and scalars become fixed overrides.

#![deny(unsafe_code)]

use mramsim_engine::store::DiskStore;
use mramsim_engine::{
    parse_value, Engine, EngineError, JobEvent, ParamSet, ParamValue, Registry, ServeConfig,
    Server, SweepJournal, SweepOptions, SweepPlan,
};
use mramsim_telemetry as telemetry;
use mramsim_telemetry::{report, Clock, Fanout, JsonlRecorder, MetricsRecorder, TelemetryLog};
use std::io::IsTerminal as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "\
mramsim — unified scenario-execution engine for the STT-MRAM
magnetic-coupling reproduction (Wu et al., DATE 2020)

USAGE:
    mramsim list                         show scenarios and parameters
    mramsim run <scenario> [OPTIONS]     run one scenario
    mramsim sweep <scenario> [OPTIONS]   run a parameter grid in parallel
    mramsim campaign [scenario] [OPTIONS] sharded grid campaign: sweeps
                                         an auto-generated `--shard`
                                         axis (default: array-wer-shard)
    mramsim serve [OPTIONS]              HTTP/JSON simulation service
                                         over one shared engine
    mramsim report [scenario...]         Markdown report (default: all)
    mramsim stats <run-id|path>          post-run telemetry report
    mramsim trace <run-id|path>          export a Chrome/Perfetto trace
    mramsim diff <run-a> <run-b>         compare two runs phase-by-phase
    mramsim help                         this text

OPTIONS:
    --<param> <value>    set a scenario parameter; value forms:
                             90           number
                             20,35,55     list
                             60..240:20   inclusive range with step
                         in `sweep`, lists/ranges become grid axes
    --format <md|csv|chart>   output format (default md)
    --workers <n>             sweep worker threads (default: all cores)
    --cache-dir <path|off>    persistent result cache directory
                              (default: $MRAMSIM_CACHE_DIR, else
                              ~/.cache/mramsim; `off` disables disk —
                              MRAMSIM_CACHE_DIR=off does too)
    --cache-cap <n>           in-memory cache capacity in entries
    --limit <n>               sweep: compute at most n new points,
                              journal them, and stop (resume later)
    --resume <run>            sweep: continue a journaled run; the plan
                              is reloaded from the journal, finished
                              points are served from the disk cache
    --telemetry <on|off>      sweep: record metrics/events to
                              <cache-dir>/runs/<run-id>.telemetry
                              (default on; results are byte-identical
                              either way)
    --progress <auto|on|off>  sweep: live progress line on stderr
                              (default auto: only when stderr is a
                              terminal)
    --addr <host:port>        serve: bind address (default
                              127.0.0.1:7878; port 0 picks a free
                              port — the bound address is printed)
    --max-inflight <n>        serve: max concurrently running jobs;
                              submissions beyond this get HTTP 429
                              (default 4)

PERSISTENT CACHE & RESUMABLE SWEEPS:
    Results are content-addressed by (scenario, full parameter
    fingerprint) plus a schema version and persisted under
    --cache-dir, so a re-run in a new process is served from disk
    with zero recomputation. Every sweep also writes a checkpoint
    journal named after its run id (printed on stderr); an
    interrupted campaign continues with

        mramsim sweep --resume <run-id>

    and produces output byte-identical to an uninterrupted run.

OBSERVABILITY:
    Every sweep (unless --telemetry off) streams a JSONL event log —
    job completions with durations and cache tiers, pool and solver
    counters, latency histograms, and a hierarchical span tree (every
    job, kernel build, cache/disk lookup, ensemble, shard, and
    journal flush nested under the sweep root, tagged with its worker
    lane) — to <cache-dir>/runs/<run-id>.telemetry, and

        mramsim stats <run-id>                post-run report +
                                              per-worker timeline
        mramsim stats <run-id> --critical-path  longest span chain with
                                              wall-clock attribution
        mramsim trace <run-id> -o trace.json  Chrome trace-event JSON;
                                              load in ui.perfetto.dev
                                              or chrome://tracing
                                              (--check validates span
                                              pairing/nesting first)
        mramsim diff <run-a> <run-b>          phase-by-phase A/B diff;
                                              --fail-above <pct> exits
                                              non-zero when any gated
                                              metric regresses past pct

    `stats`, `trace`, and `diff` accept a run id (resolved under
    <cache-dir>/runs/) or a direct path to a .telemetry file.
    Telemetry is write-only: cache keys and CSV output are
    byte-identical with it on or off.

SERVING:
    `mramsim serve` runs a concurrent HTTP/JSON service over one
    shared engine: every client shares the same warm cache, disk
    store, and worker pool. Submissions are validated up front,
    identical in-flight plans are joined instead of recomputed, and
    per-job progress streams as JSONL. POST /shutdown drains
    gracefully — running sweeps are cancelled cooperatively and their
    journals stay `sweep --resume`-able.

    mramsim serve --addr 127.0.0.1:7878 --max-inflight 4
    curl -s localhost:7878/healthz
    curl -s -XPOST localhost:7878/sweeps -d \
      '{\"scenario\":\"fig4b\",\"axes\":{\"pitch\":[90,120,200]}}'
    curl -sN localhost:7878/runs/j1          # streamed progress
    curl -s localhost:7878/results/<key>     # content-addressed fetch
    curl -s localhost:7878/metrics
    curl -s -XPOST localhost:7878/shutdown

EXAMPLES:
    mramsim run explore --ecd 35 --temperature_c 85
    mramsim sweep fig4b --pitch 60..240:20 --ecd 20,35,55
    mramsim sweep faults --pitch 55..90:5 --format csv

MONTE-CARLO DYNAMICS (s-LLGS trajectory ensembles):
    Seeded and deterministic: --trajectories/--seed/--dt_ps are part of
    the result's cache key, so repeats are served from the cache.

    mramsim run wer-mc --trajectories 4096 --seed 7
    mramsim sweep wer-mc --pulse_ns 0.8..2.0:0.2 --trajectories 2048
    mramsim run switch-traj --overdrive 3 --span_ns 15

ARRAY WRITE CAMPAIGNS (per-cell Monte-Carlo fault maps):
    array-wer writes every cell of an N x M array to the complement of
    its stored pattern bit, each cell under the stray field of its own
    neighbourhood, via per-cell s-LLGS WER ensembles. --rows/--cols/
    --pattern/--trajectories are cache-key parameters; sweep --pitch
    for WER-vs-density curves.

    mramsim run array-wer --rows 8 --cols 8 --pattern checkerboard
    mramsim sweep array-wer --pitch 60,70,90 --trajectories 256
    mramsim run array-wer --pitch 55 --voltage_v 0.8 --format chart

MEGABIT CAMPAIGNS (sparse sharded array-wer-shard):
    array-wer-shard evaluates one fixed-height row band of an
    arbitrarily large grid by collapsing cells with identical
    stored-state windows into equivalence classes — one ring-truncated
    hierarchical stray field and one Monte-Carlo ensemble per class,
    so memory is bounded by the class count, never the grid.
    --max_radius caps the kernel rings; --field_tol (Oe) grows rings
    until the a-priori dipole-tail bound meets it; --defects plants
    stuck cells (`row,col=P;row,col=AP`). `campaign` sweeps the
    `--shard` axis over the whole grid with journaling, so an
    interrupted megabit run resumes at shard granularity and the CSV
    is byte-identical to an uninterrupted one:

    mramsim campaign --rows 1024 --cols 1024 --shard_rows 64
    mramsim campaign --rows 1024 --cols 1024 --limit 4   # then:
    mramsim sweep --resume <run-id>
    mramsim run array-wer-shard --shard 3 --defects \"512,512=AP\"

ABLATIONS:
    Scenarios that build a device (fig4a, fig4b point mode, faults)
    accept the field-model knobs for accuracy/speed studies:
    --segments <n>   Biot-Savart segments per loop (default 256)
    --exact 1        exact elliptic-integral loops instead of polygons

    mramsim run fig4a --segments 64
    mramsim sweep fig4b --pitch 60..240:20 --segments 32,256 --exact 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `mramsim help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Writes to stdout, exiting quietly when the reader has gone away
/// (e.g. `mramsim list | head`) — `println!` would panic on the
/// broken pipe instead.
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            emit(USAGE);
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Parsed `--name value` options, with the engine/runtime flags split
/// off from scenario parameters.
struct Options {
    scenario: Option<String>,
    params: Vec<(String, ParamValue)>,
    format: String,
    workers: Option<usize>,
    /// Raw `--cache-dir` value (`off` disables the disk tier).
    cache_dir: Option<String>,
    cache_cap: Option<usize>,
    limit: Option<usize>,
    resume: Option<String>,
    /// Whether sweeps record telemetry (default on).
    telemetry: bool,
    /// Live progress line: `auto` (TTY only), `on`, or `off`.
    progress: String,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let scenario = args.first().filter(|a| !a.starts_with("--")).cloned();
    let mut options = Options {
        scenario,
        params: Vec::new(),
        format: "md".to_owned(),
        workers: None,
        cache_dir: None,
        cache_cap: None,
        limit: None,
        resume: None,
        telemetry: true,
        progress: "auto".to_owned(),
    };
    let mut rest = &args[usize::from(options.scenario.is_some())..];
    let integer = |name: &str, value: &str| {
        value
            .parse::<usize>()
            .map_err(|_| format!("`--{name}` needs an integer, got `{value}`"))
    };
    while let Some(flag) = rest.first() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--option`, got `{flag}`"))?;
        let value = rest
            .get(1)
            .ok_or_else(|| format!("`--{name}` needs a value"))?;
        match name {
            "format" => {
                if !matches!(value.as_str(), "md" | "csv" | "chart") {
                    return Err(format!(
                        "`--format` must be md, csv, or chart, got `{value}`"
                    ));
                }
                value.clone_into(&mut options.format);
            }
            "workers" => options.workers = Some(integer(name, value)?),
            "cache-dir" => options.cache_dir = Some(value.clone()),
            "cache-cap" => options.cache_cap = Some(integer(name, value)?),
            "limit" => options.limit = Some(integer(name, value)?),
            "resume" => options.resume = Some(value.clone()),
            "telemetry" => {
                options.telemetry = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("`--telemetry` must be on or off, got `{other}`")),
                };
            }
            "progress" => {
                if !matches!(value.as_str(), "auto" | "on" | "off") {
                    return Err(format!(
                        "`--progress` must be auto, on, or off, got `{value}`"
                    ));
                }
                value.clone_into(&mut options.progress);
            }
            _ => {
                let parsed = parse_value(name, value).map_err(|e| e.to_string())?;
                options.params.push((name.to_owned(), parsed));
            }
        }
        rest = &rest[2..];
    }
    Ok(options)
}

/// The default disk-cache location for commands that did not pass
/// `--cache-dir`. `MRAMSIM_CACHE_DIR=off` disables persistence
/// globally — the only opt-out `report` has, since it takes no flags.
fn default_cache_dir() -> Option<PathBuf> {
    match std::env::var("MRAMSIM_CACHE_DIR") {
        Ok(v) if v == "off" => None,
        _ => Some(DiskStore::default_dir()),
    }
}

/// The disk-cache directory to use: the `--cache-dir` value, `None`
/// for `off`, or the default location.
fn resolve_cache_dir(options: &Options) -> Option<PathBuf> {
    match options.cache_dir.as_deref() {
        Some("off") => None,
        Some(dir) => Some(PathBuf::from(dir)),
        None => default_cache_dir(),
    }
}

fn base_engine(options: &Options) -> Engine {
    let mut engine = Engine::standard();
    if let Some(n) = options.workers {
        engine = engine.with_workers(n);
    }
    if let Some(cap) = options.cache_cap {
        engine = engine.with_cache_capacity(cap);
    }
    engine
}

fn build_engine(options: &Options, cache_dir: Option<&Path>) -> Result<Engine, String> {
    let Some(dir) = cache_dir else {
        return Ok(base_engine(options));
    };
    match base_engine(options).with_disk_cache(dir) {
        Ok(engine) => Ok(engine),
        // An unusable *default* directory (read-only $HOME, sandbox)
        // degrades to memory-only with a warning — persistence is an
        // optimisation there. An explicitly requested directory that
        // cannot be used is an error the user needs to hear about.
        Err(e) if options.cache_dir.is_none() => {
            eprintln!("warning: persistent cache disabled: {e}");
            Ok(base_engine(options))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_list() -> Result<(), String> {
    let registry = Registry::standard();
    let mut out = format!("{} registered scenario(s):\n\n", registry.len());
    for scenario in registry.iter() {
        out.push_str(&format!("  {:<8} {}\n", scenario.id(), scenario.summary()));
        for spec in scenario.params() {
            out.push_str(&format!(
                "           --{} <{}>  {}\n",
                spec.name,
                spec.default.display(),
                spec.doc
            ));
        }
        out.push('\n');
    }
    emit(&out);
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    if options.resume.is_some() || options.limit.is_some() {
        return Err("`--resume`/`--limit` only apply to `sweep`".into());
    }
    let scenario = options
        .scenario
        .clone()
        .ok_or("`run` needs a scenario id")?;
    let cache_dir = resolve_cache_dir(&options);
    let engine = build_engine(&options, cache_dir.as_deref())?;
    let mut overrides = ParamSet::new();
    for (name, value) in options.params {
        overrides.insert(&name, value);
    }
    let outcome = engine
        .run(&scenario, &overrides)
        .map_err(|e: EngineError| e.to_string())?;
    match options.format.as_str() {
        "csv" => emit(&outcome.output.to_csv()),
        "chart" => match &outcome.output.chart {
            Some(chart) => emit(chart),
            None => emit(&outcome.output.to_markdown()),
        },
        _ => emit(&outcome.output.to_markdown()),
    }
    eprintln!(
        "ran `{scenario}` in {:.1?}{}",
        outcome.duration,
        if outcome.disk_hit {
            " (disk-cache hit)"
        } else if outcome.cache_hit {
            " (cache hit)"
        } else {
            ""
        }
    );
    Ok(())
}

/// The throttled live progress line a sweep renders on stderr.
///
/// Fed from [`JobEvent`]s on the worker threads; never consulted by
/// anything that produces results, so it cannot move a golden number.
struct Progress {
    total: usize,
    workers: usize,
    start: Instant,
    done: AtomicUsize,
    hits: AtomicUsize,
    busy_ns: AtomicU64,
    last: Mutex<Instant>,
}

impl Progress {
    fn new(total: usize, workers: usize) -> Self {
        let now = Instant::now();
        Self {
            total,
            workers,
            start: now,
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            // Pre-aged so the very first job renders immediately.
            last: Mutex::new(now.checked_sub(Duration::from_secs(1)).unwrap_or(now)),
        }
    }

    fn on_job(&self, event: &JobEvent<'_>) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if event.cache_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_ns
            .fetch_add(event.duration.as_nanos() as u64, Ordering::Relaxed);
        // Throttle to ~10 Hz, but always render the final job so the
        // line ends at 100%.
        {
            // Recover from poisoning: a panicking job must not take
            // the progress line (and with it the sweep) down.
            let mut last = self
                .last
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if done < self.total && last.elapsed() < Duration::from_millis(100) {
                return;
            }
            *last = Instant::now();
        }
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let eta = (self.total.saturating_sub(done)) as f64 / rate.max(1e-9);
        let hit_pct = 100.0 * self.hits.load(Ordering::Relaxed) as f64 / done as f64;
        let busy = self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let util = 100.0 * busy / (elapsed * self.workers as f64);
        eprint!(
            "\r\x1b[K  {done}/{} jobs · {rate:.1} jobs/s · ETA {} · cache {hit_pct:.0}% · pool {util:.0}%",
            self.total,
            report::format_secs(eta),
        );
    }

    /// Erases the progress line so the summary starts on a clean line.
    fn clear(&self) {
        eprint!("\r\x1b[K");
    }
}

/// Resolves a run id (or a direct path) to its `.telemetry` log.
///
/// A readable path wins outright; otherwise the id is looked up under
/// `<cache-dir>/runs/`. An unknown id lists the run ids that *are*
/// recorded there, so a typo'd or evicted run is a one-step fix
/// instead of a scavenger hunt.
fn resolve_run_log(run: &str, cache_dir: Option<&str>) -> Result<PathBuf, String> {
    let direct = PathBuf::from(run);
    if direct.is_file() {
        return Ok(direct);
    }
    let dir = match cache_dir {
        Some("off") => None,
        Some(dir) => Some(PathBuf::from(dir)),
        None => default_cache_dir(),
    }
    .ok_or("resolving a run id needs a cache directory (do not pass `--cache-dir off`)")?;
    let path = JsonlRecorder::path_for(&dir, run);
    if path.is_file() {
        return Ok(path);
    }
    let runs_dir = path
        .parent()
        .map_or_else(|| dir.join("runs"), Path::to_path_buf);
    let mut available: Vec<String> = std::fs::read_dir(&runs_dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) != Some("telemetry") {
                return None;
            }
            Some(p.file_stem()?.to_str()?.to_owned())
        })
        .collect();
    available.sort();
    if available.is_empty() {
        Err(format!(
            "no telemetry log for `{run}` — nothing recorded under {} \
             (run a sweep first, or pass a path to a .telemetry file)",
            runs_dir.display()
        ))
    } else {
        Err(format!(
            "no telemetry log for `{run}` under {} — available run id(s):\n  {}",
            runs_dir.display(),
            available.join("\n  ")
        ))
    }
}

/// Hand-rolled flag parsing for the log-analysis commands: they take
/// positional run ids and valueless flags (`--check`,
/// `--critical-path`), which the `--name value` grammar of
/// [`parse_options`] cannot express.
struct LogArgs {
    positional: Vec<String>,
    cache_dir: Option<String>,
    out: Option<PathBuf>,
    check: bool,
    critical_path: bool,
    fail_above: Option<f64>,
}

fn parse_log_args(command: &str, args: &[String], allowed: &[&str]) -> Result<LogArgs, String> {
    let mut parsed = LogArgs {
        positional: Vec::new(),
        cache_dir: None,
        out: None,
        check: false,
        critical_path: false,
        fail_above: None,
    };
    let mut rest = args;
    while let Some(arg) = rest.first() {
        let flag = arg.as_str();
        if flag.starts_with('-') && !allowed.contains(&flag) {
            return Err(format!(
                "`{command}` does not take `{flag}` (flags: {})",
                allowed.join(", ")
            ));
        }
        let value = |name: &str| {
            rest.get(1)
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        let consumed = match flag {
            "--check" => {
                parsed.check = true;
                1
            }
            "--critical-path" => {
                parsed.critical_path = true;
                1
            }
            "--cache-dir" => {
                parsed.cache_dir = Some(value("--cache-dir")?);
                2
            }
            "-o" | "--out" => {
                parsed.out = Some(PathBuf::from(value(flag)?));
                2
            }
            "--fail-above" => {
                let raw = value("--fail-above")?;
                let pct: f64 = raw
                    .parse()
                    .map_err(|_| format!("`--fail-above` needs a percentage, got `{raw}`"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!(
                        "`--fail-above` needs a non-negative percentage, got `{raw}`"
                    ));
                }
                parsed.fail_above = Some(pct);
                2
            }
            positional => {
                parsed.positional.push(positional.to_owned());
                1
            }
        };
        rest = &rest[consumed..];
    }
    Ok(parsed)
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let parsed = parse_log_args("stats", args, &["--critical-path", "--cache-dir"])?;
    let [run] = parsed.positional.as_slice() else {
        return Err(
            "`stats` needs one run id (printed by `sweep`) or a path to a .telemetry file".into(),
        );
    };
    let path = resolve_run_log(run, parsed.cache_dir.as_deref())?;
    let log = TelemetryLog::load(path)?;
    if parsed.critical_path {
        emit(&report::render_critical_path(&log));
    } else {
        emit(&report::render_stats(&log));
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let parsed = parse_log_args("trace", args, &["-o", "--out", "--check", "--cache-dir"])?;
    let [run] = parsed.positional.as_slice() else {
        return Err("`trace` needs one run id or a path to a .telemetry file".into());
    };
    let path = resolve_run_log(run, parsed.cache_dir.as_deref())?;
    let log = TelemetryLog::load(path)?;
    let tree = log.span_tree();
    if parsed.check {
        tree.check()
            .map_err(|problem| format!("span tree check failed: {problem}"))?;
        eprintln!(
            "span tree ok: {} span(s), {} root(s), {} labelled lane(s)",
            tree.spans.len(),
            tree.roots.len(),
            tree.lane_labels.len(),
        );
    }
    let json = telemetry::trace::chrome_trace(&log);
    match &parsed.out {
        Some(out) => {
            std::fs::write(out, &json)
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            eprintln!(
                "wrote {} ({} span(s)) — load in ui.perfetto.dev or chrome://tracing",
                out.display(),
                tree.spans.len(),
            );
        }
        None => emit(&json),
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let parsed = parse_log_args("diff", args, &["--fail-above", "--cache-dir"])?;
    let [run_a, run_b] = parsed.positional.as_slice() else {
        return Err("`diff` needs two run ids or .telemetry paths: `mramsim diff <a> <b>`".into());
    };
    let log_a = TelemetryLog::load(resolve_run_log(run_a, parsed.cache_dir.as_deref())?)?;
    let log_b = TelemetryLog::load(resolve_run_log(run_b, parsed.cache_dir.as_deref())?)?;
    let diff = telemetry::diff::RunDiff::compare(&log_a, &log_b);
    emit(&diff.render(run_a, run_b));
    if let Some(threshold) = parsed.fail_above {
        let worst = diff.max_gated_regression_pct();
        if worst > threshold {
            return Err(format!(
                "regression gate tripped: max gated regression {worst:.1}% \
                 exceeds --fail-above {threshold}%"
            ));
        }
        eprintln!("regression gate ok: max gated regression {worst:.1}% (limit {threshold}%)");
    }
    Ok(())
}

/// Folds `--name value` pairs onto a plan: multi-valued parameters
/// become grid axes, scalars fixed overrides.
fn plan_with_params(mut plan: SweepPlan, params: Vec<(String, ParamValue)>) -> SweepPlan {
    for (name, value) in params {
        plan = match value {
            ParamValue::List(values) if values.len() > 1 => plan.axis(&name, values),
            // A degenerate one-point range/list fixes a scalar; list
            // parameters coerce a Number back via `ParamSet::list`.
            ParamValue::List(values) if values.len() == 1 => plan.fix(&name, values[0]),
            other => plan.fix(&name, other),
        };
    }
    plan
}

/// Validates a fresh plan against the scenario's declared parameters
/// and opens its checkpoint journal. Shared by `sweep` and `campaign`.
fn prepare_fresh_run(
    options: &Options,
    engine: &Engine,
    cache_dir: Option<&Path>,
    scenario: &str,
    plan: &SweepPlan,
) -> Result<Option<SweepJournal>, String> {
    // `--limit` exists to slice a resumable campaign; without a
    // store the computed slice would die with the process and the
    // "resume to continue" advice would be unfollowable.
    if options.limit.is_some() && engine.store().is_none() {
        return Err(
            "`--limit` slices a resumable campaign, which needs a usable disk cache \
             (do not pass `--cache-dir off`)"
                .into(),
        );
    }
    // Validate the plan before touching the journal, so a typo'd
    // scenario or parameter does not leave resumable-looking
    // debris under runs/.
    let specs = engine
        .registry()
        .get(scenario)
        .map_err(|e| e.to_string())?
        .params();
    for name in plan
        .axes()
        .iter()
        .map(|(name, _)| name.as_str())
        .chain(plan.fixed().iter().map(|(name, _)| name))
    {
        if !specs.iter().any(|s| s.name == name) {
            return Err(format!("scenario `{scenario}` has no parameter `{name}`"));
        }
    }
    // With the disk cache on, every sweep is checkpointed: the
    // journal captures the plan and streams finished points. No
    // store (disabled, or default dir unusable) ⇒ no journal —
    // there would be nothing on disk to resume from anyway.
    match (cache_dir, engine.store().is_some()) {
        (Some(dir), true) => {
            let path = SweepJournal::path_for(dir, &SweepJournal::run_id(plan));
            Ok(Some(
                SweepJournal::create(path, plan).map_err(|e| e.to_string())?,
            ))
        }
        _ => Ok(None),
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    let cache_dir = resolve_cache_dir(&options);
    let engine = build_engine(&options, cache_dir.as_deref())?;

    let (plan, journal) = if let Some(run_id) = &options.resume {
        if options.scenario.is_some() || !options.params.is_empty() {
            return Err(
                "`--resume` reloads the journaled plan; do not pass a scenario or parameters"
                    .into(),
            );
        }
        // `store()` is None for `--cache-dir off` *and* when the
        // default directory was unusable — resuming cannot work
        // without the persisted results either way.
        if engine.store().is_none() {
            return Err(
                "`--resume` needs a usable disk cache (do not pass `--cache-dir off`)".into(),
            );
        }
        let dir = cache_dir.as_ref().expect("store implies a cache dir");
        let (journal, state) =
            SweepJournal::resume(SweepJournal::path_for(dir, run_id)).map_err(|e| e.to_string())?;
        eprintln!(
            "resuming `{run_id}`: {}/{} point(s) already journaled",
            state.done.len(),
            state.plan.len(),
        );
        (state.plan, Some(journal))
    } else {
        let scenario = options
            .scenario
            .clone()
            .ok_or("`sweep` needs a scenario id (or `--resume <run>`)")?;
        let plan = plan_with_params(SweepPlan::new(&scenario), options.params.clone());
        if plan.axes().is_empty() {
            return Err("`sweep` needs at least one multi-valued axis \
                        (e.g. `--pitch 60..240:20`)"
                .into());
        }
        let journal = prepare_fresh_run(&options, &engine, cache_dir.as_deref(), &scenario, &plan)?;
        (plan, journal)
    };
    execute_sweep(&options, &engine, cache_dir.as_deref(), plan, journal)
}

/// `mramsim campaign`: a sweep whose `--shard` axis is generated to
/// cover the scenario's whole grid, one journaled point per shard —
/// megabit campaigns inherit `--limit`, `--resume`, the disk cache,
/// and telemetry from the sweep machinery for free.
fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let options = parse_options(args)?;
    if options.resume.is_some() {
        return Err("resume a campaign with `mramsim sweep --resume <run-id>`".into());
    }
    if options.params.iter().any(|(name, _)| name == "shard") {
        return Err(
            "`campaign` generates the `--shard` axis itself; use `sweep` for hand-picked shards"
                .into(),
        );
    }
    let scenario = options
        .scenario
        .clone()
        .unwrap_or_else(|| "array-wer-shard".to_owned());
    let cache_dir = resolve_cache_dir(&options);
    let engine = build_engine(&options, cache_dir.as_deref())?;
    let specs = engine
        .registry()
        .get(&scenario)
        .map_err(|e| e.to_string())?
        .params();
    if !specs.iter().any(|s| s.name == "shard") {
        return Err(format!(
            "scenario `{scenario}` is not shardable (no `--shard` parameter)"
        ));
    }
    // The shard count comes from the grid geometry; both knobs must be
    // single values — a list would change the axis length per point.
    let numeric = |name: &str| -> Result<f64, String> {
        match options.params.iter().find(|(n, _)| n == name) {
            Some((_, ParamValue::Number(v))) => Ok(*v),
            Some(_) => Err(format!(
                "`campaign` needs a single `--{name}` value (a list would change the shard count)"
            )),
            None => match specs.iter().find(|s| s.name == name).map(|s| &s.default) {
                Some(ParamValue::Number(v)) => Ok(*v),
                _ => Err(format!(
                    "scenario `{scenario}` is not shardable (needs a numeric `--{name}` default)"
                )),
            },
        }
    };
    let rows = numeric("rows")?;
    let shard_rows = numeric("shard_rows")?;
    if rows < 1.0 || shard_rows < 1.0 || rows.fract() != 0.0 || shard_rows.fract() != 0.0 {
        return Err("`--rows` and `--shard_rows` must be positive integers".into());
    }
    let n_shards = (rows as usize).div_ceil(shard_rows as usize);
    let plan = plan_with_params(SweepPlan::new(&scenario), options.params.clone()).axis(
        "shard",
        (0..n_shards).map(|shard| shard as f64).collect::<Vec<_>>(),
    );
    let journal = prepare_fresh_run(&options, &engine, cache_dir.as_deref(), &scenario, &plan)?;
    eprintln!(
        "campaign `{scenario}`: {n_shards} shard(s) of {shard_rows} row(s) covering {rows} grid rows"
    );
    execute_sweep(&options, &engine, cache_dir.as_deref(), plan, journal)
}

/// Runs a prepared plan: telemetry install, progress line, the sweep
/// itself, output rendering, and the summary/journal/telemetry trailer.
fn execute_sweep(
    options: &Options,
    engine: &Engine,
    cache_dir: Option<&Path>,
    plan: SweepPlan,
    journal: Option<SweepJournal>,
) -> Result<(), String> {
    let run_id = SweepJournal::run_id(&plan);
    // Telemetry: metrics aggregate in-process; events stream to the
    // run's JSONL log when a cache directory exists to hold it. All of
    // it is write-only with respect to results.
    let metrics = Arc::new(MetricsRecorder::new());
    let mut jsonl: Option<Arc<JsonlRecorder>> = None;
    let telemetry_guard = if options.telemetry {
        if let Some(dir) = &cache_dir {
            match JsonlRecorder::create(JsonlRecorder::path_for(dir, &run_id), Clock::system()) {
                Ok(sink) => jsonl = Some(Arc::new(sink)),
                Err(e) => eprintln!("warning: telemetry log disabled: {e}"),
            }
        }
        let mut sinks: Vec<Arc<dyn telemetry::Recorder>> = vec![metrics.clone()];
        if let Some(sink) = &jsonl {
            sinks.push(sink.clone());
        }
        Some(telemetry::install(Arc::new(Fanout(sinks))))
    } else {
        None
    };
    let show_progress = match options.progress.as_str() {
        "on" => true,
        "off" => false,
        _ => std::io::stderr().is_terminal(),
    };
    let progress = Progress::new(plan.len(), engine.workers());

    let record = |event: &JobEvent<'_>| {
        if event.ok {
            if let Some(journal) = &journal {
                journal.record(event.index, event.key);
            }
        }
        if show_progress {
            progress.on_job(event);
        }
    };
    let sweep_options = SweepOptions {
        limit: options.limit,
        on_done: Some(&record),
        cancel: None,
    };
    let outcome = engine
        .sweep_with(&plan, &sweep_options)
        .map_err(|e| e.to_string())?;
    if show_progress {
        progress.clear();
    }
    // Process-wide stray-field kernel cache traffic (ring-1 +
    // hierarchical): gauged into the sealed snapshot so a later
    // `mramsim stats <run-id>` can render what this process saw.
    let kernel = mramsim_array::kernel_cache_stats();
    if options.telemetry && kernel.hits + kernel.misses > 0 {
        telemetry::gauge_set("kernel_cache.hits", kernel.hits as f64);
        telemetry::gauge_set("kernel_cache.misses", kernel.misses as f64);
        telemetry::gauge_set("kernel_cache.entries", kernel.entries as f64);
    }
    // Seal the log: one final metrics snapshot, then uninstall.
    if let Some(sink) = &jsonl {
        sink.write_snapshot(&metrics.snapshot());
    }
    drop(telemetry_guard);
    let summary = outcome.summary_table();
    match options.format.as_str() {
        "csv" => emit(&summary.to_csv()),
        _ => emit(&summary.to_markdown()),
    }
    let skipped = if outcome.skipped > 0 {
        format!(", {} skipped (job limit)", outcome.skipped)
    } else {
        String::new()
    };
    // Warm-hit and eviction counts come from the telemetry metrics
    // when they were recorded (the counters see exactly this sweep's
    // cache traffic); without telemetry they fall back to the sweep
    // outcome and the engine-lifetime cache stats.
    let (warm_hits, evictions) = if options.telemetry {
        let snapshot = metrics.snapshot();
        (
            snapshot.counter("cache.memory_hits"),
            snapshot.counter("cache.evictions"),
        )
    } else {
        (
            outcome.cache_hits.saturating_sub(outcome.disk_hits) as u64,
            engine.cache_stats().evictions,
        )
    };
    let pressure = if evictions > 0 {
        format!(", {evictions} memory eviction(s)")
    } else {
        String::new()
    };
    // Only scenarios that evaluate stray-field kernels touch this
    // cache; stay quiet for the rest.
    let kernels = if kernel.hits + kernel.misses > 0 {
        format!(
            ", kernel cache {}/{} hit(s) ({} kernel(s) held)",
            kernel.hits,
            kernel.hits + kernel.misses,
            kernel.entries,
        )
    } else {
        String::new()
    };
    eprintln!(
        "swept `{}`: {} point(s) on {} worker(s) in {:.1?} — {} cache hit(s) ({warm_hits} warm, {} from disk), {} error(s){skipped}{pressure}{kernels}",
        outcome.scenario,
        outcome.jobs.len(),
        engine.workers(),
        outcome.duration,
        outcome.cache_hits,
        outcome.disk_hits,
        outcome.errors,
    );
    if let Some(journal) = &journal {
        eprintln!(
            "run `{run_id}` journaled at {} — continue with `mramsim sweep --resume {run_id}`",
            journal.path().display()
        );
    }
    if let Some(sink) = &jsonl {
        eprintln!(
            "telemetry at {} — inspect with `mramsim stats {run_id}`",
            sink.path().display()
        );
    }
    Ok(())
}

/// `mramsim serve`: bind the HTTP service and block until a graceful
/// `POST /shutdown` drain completes.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut max_inflight = 4usize;
    let mut rest: Vec<String> = Vec::new();
    let mut remaining = args.iter();
    while let Some(flag) = remaining.next() {
        match flag.as_str() {
            "--addr" => {
                addr = remaining
                    .next()
                    .ok_or("`--addr` needs a host:port value")?
                    .clone();
            }
            "--max-inflight" => {
                let value = remaining.next().ok_or("`--max-inflight` needs a value")?;
                max_inflight = value
                    .parse()
                    .map_err(|_| format!("`--max-inflight` needs an integer, got `{value}`"))?;
                if max_inflight == 0 {
                    return Err("`--max-inflight` must be at least 1".to_owned());
                }
            }
            _ => rest.push(flag.clone()),
        }
    }
    let options = parse_options(&rest)?;
    if options.scenario.is_some() || !options.params.is_empty() {
        return Err(
            "`serve` takes no scenario or parameters; clients submit plans over HTTP".to_owned(),
        );
    }
    let cache_dir = resolve_cache_dir(&options);
    let engine = Arc::new(build_engine(&options, cache_dir.as_deref())?);
    let config = ServeConfig {
        addr,
        max_inflight,
        cache_dir,
    };
    let server = Server::bind(engine, &config).map_err(|e| e.to_string())?;
    // Scripts (and the CI smoke test) bind port 0 and read the real
    // address from this line, so it must land before the first request.
    emit(&format!("listening on http://{}\n", server.local_addr()));
    if std::io::Write::flush(&mut std::io::stdout()).is_err() {
        return Ok(());
    }
    eprintln!(
        "POST /runs | POST /sweeps | GET /runs/<job> | GET /results/<key> | \
         GET /healthz | GET /metrics | POST /shutdown"
    );
    server.run();
    eprintln!("drained; all journals flushed");
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("`report` takes scenario ids only, got `{flag}`"));
    }
    // Reports also read and feed the persistent cache (falling back
    // to memory-only, with a warning, when the default directory is
    // unusable — the same degradation run/sweep announce).
    let engine = match default_cache_dir() {
        Some(dir) => match Engine::standard().with_disk_cache(dir) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("warning: persistent cache disabled: {e}");
                Engine::standard()
            }
        },
        None => Engine::standard(),
    };
    let ids: Vec<&str> = args.iter().map(String::as_str).collect();
    for id in &ids {
        engine.registry().get(id).map_err(|e| e.to_string())?;
    }
    emit(&engine.report(&ids));
    Ok(())
}
