//! The scenario registry: every driver in the workspace adapted to the
//! uniform [`Scenario`] interface.
//!
//! Ten paper figures, the extension WER study, the design-space
//! explorer, the coupling-aware fault simulator, the s-LLGS
//! Monte-Carlo dynamics (`wer-mc`, `switch-traj`), and the array-scale
//! Monte-Carlo write campaigns — dense (`array-wer`) and sparse sharded
//! (`array-wer-shard`) — are registered under stable ids.
//! [`Registry::standard`] builds the full set.

use crate::{EngineError, ParamSet, ParamSpec, Scenario, ScenarioOutput};
use mramsim_array::DataPattern;
use mramsim_array::{CouplingAnalyzer, Defect, NeighborhoodPattern, PatternGrid};
use mramsim_core::experiments::{
    ext_wer, fig2a, fig2b, fig3c, fig3d, fig4a, fig4b, fig4c, fig5, fig6a, fig6b,
};
use mramsim_core::explorer::{explore, DesignQuery};
use mramsim_core::report::Table;
use mramsim_dynamics::{
    switching_time_distribution, wer_monte_carlo, EnsemblePlan, MacrospinParams,
};
use mramsim_faults::march::MarchTest;
use mramsim_faults::{
    array_wer_campaign, classify_write_faults, shard_wer_campaign, ArraySimulator, ArrayWerConfig,
    ShardPlan, SparseWerConfig, WriteConditions,
};
use mramsim_mtj::wer::write_error_rate_saturating;
use mramsim_mtj::{presets, MtjDevice, SwitchDirection};
use mramsim_numerics::pool::WorkerPool;
use mramsim_units::constants::{EULER_GAMMA, OERSTED_PER_AMPERE_PER_METER};
use mramsim_units::{Kelvin, Nanometer, Nanosecond, Oersted, Volt};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Wraps a model error into [`EngineError::Scenario`].
fn model_err(scenario: &'static str, e: impl std::fmt::Display) -> EngineError {
    EngineError::Scenario {
        scenario: scenario.to_owned(),
        message: e.to_string(),
    }
}

/// Reads a parameter as an RNG seed (non-negative integer).
fn seed_of(params: &ParamSet, name: &str) -> Result<u64, EngineError> {
    Ok(params.count(name)? as u64)
}

/// The shared field-model ablation knobs (`--segments`, `--exact`)
/// offered by every scenario that builds a device.
fn field_model_specs() -> [ParamSpec; 2] {
    [
        ParamSpec::new(
            "segments",
            "Biot-Savart segments per loop (speed/accuracy knob)",
            256.0,
        ),
        ParamSpec::new(
            "exact",
            "1: exact elliptic-integral loops instead of polygons",
            0.0,
        ),
    ]
}

/// Reads the field-model knobs: `(segments, exact)`.
fn field_model_of(params: &ParamSet) -> Result<(usize, bool), EngineError> {
    Ok((params.count("segments")?, params.count("exact")? != 0))
}

/// An ordered, immutable set of registered scenarios.
///
/// # Examples
///
/// ```
/// use mramsim_engine::Registry;
///
/// let registry = Registry::standard();
/// assert!(registry.ids().any(|id| id == "fig4b"));
/// assert!(registry.get("fig4b").is_ok());
/// assert!(registry.get("nope").is_err());
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    scenarios: BTreeMap<&'static str, Arc<dyn Scenario>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("ids", &self.scenarios.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a scenario (replacing any previous one with that id).
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        self.scenarios.insert(scenario.id(), scenario);
    }

    /// The full standard set: all ten figures, the WER extension, the
    /// explorer, the fault simulator, the Monte-Carlo dynamics, and
    /// the array write campaign.
    #[must_use]
    pub fn standard() -> Self {
        let mut registry = Self::new();
        registry.register(Arc::new(Fig2aScenario));
        registry.register(Arc::new(Fig2bScenario));
        registry.register(Arc::new(Fig3cScenario));
        registry.register(Arc::new(Fig3dScenario));
        registry.register(Arc::new(Fig4aScenario));
        registry.register(Arc::new(Fig4bScenario));
        registry.register(Arc::new(Fig4cScenario));
        registry.register(Arc::new(Fig5Scenario));
        registry.register(Arc::new(Fig6aScenario));
        registry.register(Arc::new(Fig6bScenario));
        registry.register(Arc::new(ExtWerScenario));
        registry.register(Arc::new(ExploreScenario));
        registry.register(Arc::new(FaultsScenario));
        registry.register(Arc::new(WerMcScenario));
        registry.register(Arc::new(SwitchTrajScenario));
        registry.register(Arc::new(ArrayWerScenario));
        registry.register(Arc::new(ArrayWerShardScenario));
        registry
    }

    /// Looks up a scenario by id.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownScenario`] when absent.
    pub fn get(&self, id: &str) -> Result<&Arc<dyn Scenario>, EngineError> {
        self.scenarios
            .get(id)
            .ok_or_else(|| EngineError::UnknownScenario { id: id.to_owned() })
    }

    /// All ids in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.scenarios.keys().copied()
    }

    /// All scenarios in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Scenario>> {
        self.scenarios.values()
    }

    /// Number of registered scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Fig. 2a — measured R-H hysteresis loop and its §III extraction.
struct Fig2aScenario;

impl Scenario for Fig2aScenario {
    fn id(&self) -> &'static str {
        "fig2a"
    }

    fn summary(&self) -> &'static str {
        "R-H hysteresis loop of one device with the full §III extraction"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 55.0),
            ParamSpec::new("seed", "RNG seed for switching noise", 2020.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig2a::run(&fig2a::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            seed: seed_of(params, "seed")?,
        })
        .map_err(|e| model_err("fig2a", e))?;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("hc_oe", fig.extraction.hc.value())
            .with_scalar("h_offset_oe", fig.extraction.h_offset.value())
            .with_scalar("ecd_extracted_nm", fig.extraction.ecd.value()))
    }
}

/// Fig. 2b — `Hz_s_intra` vs device size, measured vs model.
struct Fig2bScenario;

impl Scenario for Fig2bScenario {
    fn id(&self) -> &'static str {
        "fig2b"
    }

    fn summary(&self) -> &'static str {
        "Hz_s_intra vs eCD: virtual-wafer measurement against the model curve"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("devices_per_size", "devices measured per size group", 4.0),
            ParamSpec::new("seed", "RNG seed for fabrication and measurement", 2020.0),
            ParamSpec::new(
                "sim_grid",
                "eCD grid (nm) for the model curve",
                vec![20.0, 35.0, 55.0, 90.0, 130.0, 175.0],
            ),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig2b::run(&fig2b::Params {
            devices_per_size: params.count("devices_per_size")?,
            seed: seed_of(params, "seed")?,
            sim_grid: params.list("sim_grid")?,
        })
        .map_err(|e| model_err("fig2b", e))?;
        let sizes = fig.measured.len() as f64;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("sizes_measured", sizes))
    }
}

/// Fig. 3c — the intra-cell stray-field map over the free-layer plane.
struct Fig3cScenario;

impl Scenario for Fig3cScenario {
    fn id(&self) -> &'static str {
        "fig3c"
    }

    fn summary(&self) -> &'static str {
        "intra-cell stray-field map over the free-layer plane"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 55.0),
            ParamSpec::new("window_factor", "half-window in units of eCD", 1.6),
            ParamSpec::new("grid", "samples per axis", 33.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig3c::run(&fig3c::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            window_factor: params.number("window_factor")?,
            grid: params.count("grid")?,
        })
        .map_err(|e| model_err("fig3c", e))?;
        let nx = fig.fl_plane.nx();
        let ny = fig.fl_plane.ny();
        let center_oe = fig.fl_plane.at(nx / 2, ny / 2).z * OERSTED_PER_AMPERE_PER_METER;
        Ok(ScenarioOutput::from_table(fig.to_table()).with_scalar("center_hz_oe", center_oe))
    }
}

/// Fig. 3d — the radial intra-field profile per device size.
struct Fig3dScenario;

impl Scenario for Fig3dScenario {
    fn id(&self) -> &'static str {
        "fig3d"
    }

    fn summary(&self) -> &'static str {
        "radial profile of Hz_s_intra across the free layer, per device size"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecds", "device sizes (nm)", vec![20.0, 35.0, 55.0, 90.0]),
            ParamSpec::new("samples", "radial sample count", 41.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig3d::run(&fig3d::Params {
            ecds: params.list("ecds")?,
            samples: params.count("samples")?,
        })
        .map_err(|e| model_err("fig3d", e))?;
        let profiles = fig.profiles.len() as f64;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("profiles", profiles))
    }
}

/// Fig. 4a — `Hz_s_inter` by neighbourhood pattern class.
struct Fig4aScenario;

impl Scenario for Fig4aScenario {
    fn id(&self) -> &'static str {
        "fig4a"
    }

    fn summary(&self) -> &'static str {
        "inter-cell stray field for all 25 neighbourhood pattern classes"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = vec![
            ParamSpec::new("ecd", "device size (nm)", 55.0),
            ParamSpec::new("pitch", "array pitch (nm)", 90.0),
        ];
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let (segments, exact) = field_model_of(params)?;
        let fig = fig4a::run(&fig4a::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch: Nanometer::new(params.number("pitch")?),
            segments,
            exact,
        })
        .map_err(|e| model_err("fig4a", e))?;
        let (lo, hi) = fig.extremes;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_scalar("inter_hz_min_oe", lo.value())
            .with_scalar("inter_hz_max_oe", hi.value()))
    }
}

/// Fig. 4b — the coupling factor Ψ vs pitch.
struct Fig4bScenario;

impl Scenario for Fig4bScenario {
    fn id(&self) -> &'static str {
        "fig4b"
    }

    fn summary(&self) -> &'static str {
        "coupling factor Ψ vs pitch (pitch=0: full figure; pitch>0: one grid point)"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = vec![
            ParamSpec::new(
                "pitch",
                "one pitch (nm) for point mode, 0 for the figure",
                0.0,
            ),
            ParamSpec::new("ecd", "device size (nm) in point mode", 35.0),
            ParamSpec::new(
                "ecds",
                "device sizes (nm) in figure mode",
                vec![20.0, 35.0, 55.0],
            ),
            ParamSpec::new("max_pitch", "figure-mode upper pitch bound (nm)", 200.0),
            ParamSpec::new("points", "figure-mode samples per curve", 24.0),
            ParamSpec::new("psi_threshold", "design-rule Ψ threshold", 0.02),
        ];
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let pitch = params.number("pitch")?;
        if pitch > 0.0 {
            // Point mode: Ψ at exactly (ecd, pitch) — the sweep and
            // cache workhorse.
            let ecd = params.number("ecd")?;
            let (segments, exact) = field_model_of(params)?;
            let device = presets::imec_like_with(Nanometer::new(ecd), segments, exact)
                .map_err(|e| model_err("fig4b", e))?;
            let coupling = CouplingAnalyzer::new(device, Nanometer::new(pitch))
                .map_err(|e| model_err("fig4b", e))?;
            let psi = coupling.psi(presets::MEASURED_HC);
            let mut table = Table::new(
                "fig4b: psi at one grid point",
                &["ecd_nm", "pitch_nm", "psi_percent"],
            );
            table.push_row(&[
                format!("{ecd:.0}"),
                format!("{pitch:.1}"),
                format!("{:.3}", 100.0 * psi),
            ]);
            return Ok(ScenarioOutput::from_table(table)
                .with_scalar("psi", psi)
                .with_scalar("psi_percent", 100.0 * psi));
        }
        let (segments, exact) = field_model_of(params)?;
        let fig = fig4b::run(&fig4b::Params {
            ecds: params.list("ecds")?,
            max_pitch: params.number("max_pitch")?,
            points: params.count("points")?,
            psi_threshold: params.number("psi_threshold")?,
            segments,
            exact,
        })
        .map_err(|e| model_err("fig4b", e))?;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_table(fig.threshold_table())
            .with_chart(fig.chart())
            .with_scalar("psi_threshold", fig.psi_threshold))
    }
}

/// Fig. 4c — critical current vs pitch under worst/best-case patterns.
struct Fig4cScenario;

impl Scenario for Fig4cScenario {
    fn id(&self) -> &'static str {
        "fig4c"
    }

    fn summary(&self) -> &'static str {
        "critical switching current vs pitch for NP8=0 and NP8=255"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new("min_pitch", "lower pitch bound (nm)", 52.5),
            ParamSpec::new("max_pitch", "upper pitch bound (nm)", 200.0),
            ParamSpec::new("points", "pitch samples", 25.0),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig4c::run(&fig4c::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch_range: (params.number("min_pitch")?, params.number("max_pitch")?),
            points: params.count("points")?,
            temperature: Kelvin::new(params.number("temperature_k")?),
        })
        .map_err(|e| model_err("fig4c", e))?;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("intrinsic_ua", fig.intrinsic_ua))
    }
}

/// Fig. 5 — write time vs pulse voltage per pitch factor.
struct Fig5Scenario;

impl Scenario for Fig5Scenario {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn summary(&self) -> &'static str {
        "write time vs pulse amplitude across coupling corners, per pitch"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new(
                "pitch_factors",
                "pitches in units of eCD",
                vec![3.0, 2.0, 1.5],
            ),
            ParamSpec::new("v_min", "lowest pulse voltage (V)", 0.7),
            ParamSpec::new("v_max", "highest pulse voltage (V)", 1.2),
            ParamSpec::new("points", "voltage samples", 26.0),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig5::run(&fig5::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch_factors: params.list("pitch_factors")?,
            voltage_range: (params.number("v_min")?, params.number("v_max")?),
            points: params.count("points")?,
            temperature: Kelvin::new(params.number("temperature_k")?),
        })
        .map_err(|e| model_err("fig5", e))?;
        // Fig. 5 is rendered per panel (one panel per pitch factor).
        let mut out = ScenarioOutput::default();
        let mut charts = String::new();
        for panel in &fig.panels {
            out = out.with_table(panel.to_table());
            charts.push_str(&panel.chart());
            charts.push('\n');
        }
        Ok(out
            .with_chart(charts)
            .with_scalar("panels", fig.panels.len() as f64))
    }
}

/// Fig. 6a — thermal stability Δ vs temperature across corners.
struct Fig6aScenario;

impl Scenario for Fig6aScenario {
    fn id(&self) -> &'static str {
        "fig6a"
    }

    fn summary(&self) -> &'static str {
        "thermal stability vs temperature across coupling corners"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new("pitch_factor", "pitch in units of eCD", 2.0),
            ParamSpec::new(
                "temps_c",
                "temperatures (°C)",
                (0..=15).map(|i| 10.0 * f64::from(i)).collect::<Vec<f64>>(),
            ),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig6a::run(&fig6a::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch_factor: params.number("pitch_factor")?,
            temps_c: params.list("temps_c")?,
        })
        .map_err(|e| model_err("fig6a", e))?;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("psi", fig.psi))
    }
}

/// Fig. 6b — worst-case Δ vs temperature per pitch factor.
struct Fig6bScenario;

impl Scenario for Fig6bScenario {
    fn id(&self) -> &'static str {
        "fig6b"
    }

    fn summary(&self) -> &'static str {
        "worst-case thermal stability vs temperature, per pitch"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new(
                "pitch_factors",
                "pitches in units of eCD",
                vec![3.0, 2.0, 1.5],
            ),
            ParamSpec::new(
                "temps_c",
                "temperatures (°C)",
                (0..=15).map(|i| 10.0 * f64::from(i)).collect::<Vec<f64>>(),
            ),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = fig6b::run(&fig6b::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch_factors: params.list("pitch_factors")?,
            temps_c: params.list("temps_c")?,
        })
        .map_err(|e| model_err("fig6b", e))?;
        let curves = fig.curves.len() as f64;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("curves", curves))
    }
}

/// Extension — write error rate vs pulse width.
struct ExtWerScenario;

impl Scenario for ExtWerScenario {
    fn id(&self) -> &'static str {
        "ext_wer"
    }

    fn summary(&self) -> &'static str {
        "write error rate vs pulse width under coupling corners (extension)"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new("pitch_factor", "pitch in units of eCD", 1.5),
            ParamSpec::new("voltage_v", "write pulse amplitude (V)", 0.9),
            ParamSpec::new(
                "pulses_ns",
                "pulse widths (ns)",
                (4..=30).map(f64::from).collect::<Vec<f64>>(),
            ),
            ParamSpec::new("target_wer", "target write error rate", 1e-9),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let fig = ext_wer::run(&ext_wer::Params {
            ecd: Nanometer::new(params.number("ecd")?),
            pitch_factor: params.number("pitch_factor")?,
            voltage: Volt::new(params.number("voltage_v")?),
            pulses_ns: params.list("pulses_ns")?,
            target_wer: params.number("target_wer")?,
            temperature: Kelvin::new(params.number("temperature_k")?),
        })
        .map_err(|e| model_err("ext_wer", e))?;
        Ok(ScenarioOutput::from_table(fig.to_table())
            .with_chart(fig.chart())
            .with_scalar("margin_ns", fig.margin_ns)
            .with_scalar("pulse_at_target_np0_ns", fig.pulse_at_target.1))
    }
}

/// Design-space exploration: how dense can the array be?
struct ExploreScenario;

impl Scenario for ExploreScenario {
    fn id(&self) -> &'static str {
        "explore"
    }

    fn summary(&self) -> &'static str {
        "densest admissible pitch for a coupling budget, with tw/Δ/retention"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new("psi_target", "coupling budget Ψ", 0.02),
            ParamSpec::new("write_voltage_v", "write pulse amplitude (V)", 0.9),
            ParamSpec::new("temperature_c", "operating temperature (°C)", 85.0),
            ParamSpec::new("retention_years", "retention requirement (years)", 10.0),
        ]
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let report = explore(&DesignQuery {
            ecd: Nanometer::new(params.number("ecd")?),
            psi_target: params.number("psi_target")?,
            write_voltage: Volt::new(params.number("write_voltage_v")?),
            temperature_c: params.number("temperature_c")?,
            retention_target_years: params.number("retention_years")?,
        })
        .map_err(|e| model_err("explore", e))?;
        Ok(ScenarioOutput::from_table(report.to_table())
            .with_scalar("recommended_pitch_nm", report.recommended_pitch.value())
            .with_scalar("psi_percent", 100.0 * report.psi)
            .with_scalar("density_bits_per_um2", report.density_bits_per_um2)
            .with_scalar("worst_case_delta", report.worst_case_delta))
    }
}

/// Array-level fault simulation: March tests + write-fault classes.
struct FaultsScenario;

impl Scenario for FaultsScenario {
    fn id(&self) -> &'static str {
        "faults"
    }

    fn summary(&self) -> &'static str {
        "March tests and pattern-sensitive write-fault classification"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new("pitch", "array pitch (nm)", 70.0),
            ParamSpec::new("rows", "array rows", 8.0),
            ParamSpec::new("cols", "array columns", 8.0),
            ParamSpec::new("voltage_v", "write pulse amplitude (V)", 1.0),
            ParamSpec::new("pulse_ns", "write pulse width (ns)", 25.0),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
            ParamSpec::new(
                "pattern",
                "initial data: zeros | ones | checkerboard",
                "checkerboard",
            ),
        ];
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let (segments, exact) = field_model_of(params)?;
        let device =
            presets::imec_like_with(Nanometer::new(params.number("ecd")?), segments, exact)
                .map_err(|e| model_err("faults", e))?;
        let pitch = Nanometer::new(params.number("pitch")?);
        let rows = params.count("rows")?;
        let cols = params.count("cols")?;
        let conditions = WriteConditions {
            voltage: Volt::new(params.number("voltage_v")?),
            pulse: Nanosecond::new(params.number("pulse_ns")?),
            temperature: Kelvin::new(params.number("temperature_k")?),
        };
        let initial = DataPattern::parse(params.text("pattern")?)
            .and_then(|p| p.build(rows, cols))
            .map_err(|e| model_err("faults", e))?;

        let mut march_table = Table::new(
            "faults: March test outcomes",
            &["test", "operations", "failures", "passed"],
        );
        let mut total_failures = 0usize;
        for test in [MarchTest::mats_plus(), MarchTest::march_c_minus()] {
            let mut sim = ArraySimulator::new(device.clone(), pitch, rows, cols, conditions)
                .map_err(|e| model_err("faults", e))?;
            sim.load(initial.clone())
                .map_err(|e| model_err("faults", e))?;
            let outcome = test.run(&mut sim).map_err(|e| model_err("faults", e))?;
            total_failures += outcome.failures.len();
            march_table.push_row(&[
                outcome.test_name.to_owned(),
                outcome.operations.to_string(),
                outcome.failures.len().to_string(),
                outcome.passed().to_string(),
            ]);
        }

        let report = classify_write_faults(
            &device,
            pitch,
            conditions.voltage,
            conditions.pulse,
            conditions.temperature,
        )
        .map_err(|e| model_err("faults", e))?;
        let mut class_table = Table::new(
            "faults: pattern-sensitive write-fault classification",
            &["quantity", "value"],
        );
        class_table.push_row(&[
            "failing (direction, class) pairs",
            &report.faults.len().to_string(),
        ]);
        class_table.push_row(&[
            "failing patterns (weighted)",
            &report.failing_pattern_count.to_string(),
        ]);
        class_table.push_row(&[
            "required pulse (ns)",
            &report.required_pulse_ns.map_or_else(
                || "above threshold everywhere".to_owned(),
                |p| format!("{p:.2}"),
            ),
        ]);

        Ok(ScenarioOutput::from_table(march_table)
            .with_table(class_table)
            .with_scalar("march_failures", total_failures as f64)
            .with_scalar("failing_patterns", f64::from(report.failing_pattern_count))
            .with_scalar("clean", f64::from(u8::from(report.is_clean()))))
    }
}

/// The resolved s-LLGS operating point shared by the Monte-Carlo
/// dynamics scenarios.
struct DynamicsPoint {
    device: MtjDevice,
    direction: SwitchDirection,
    temperature: Kelvin,
    hz_stray: Oersted,
    macrospin: MacrospinParams,
    /// Drive current through the junction, in amperes.
    drive: f64,
    /// The pulse amplitude when the drive came from a voltage.
    voltage: Option<Volt>,
    plan: EnsemblePlan,
}

/// The parameter block shared by `wer-mc` and `switch-traj` (the
/// scenario appends its own pulse/span/bin knobs and the field-model
/// ablations). All of these flow into the cache fingerprint, so
/// `--trajectories`, `--seed`, and `--dt_ps` are part of the result's
/// content address.
fn dynamics_specs(
    direction_default: &'static str,
    temperature_default: f64,
    overdrive_default: f64,
    trajectories_default: f64,
    dt_ps_default: f64,
) -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("ecd", "device size (nm)", 35.0),
        ParamSpec::new(
            "direction",
            "write direction: ap2p | p2ap",
            direction_default,
        ),
        ParamSpec::new("temperature_k", "temperature (K)", temperature_default),
        ParamSpec::new(
            "voltage_v",
            "pulse amplitude (V); 0: drive by --overdrive instead",
            0.0,
        ),
        ParamSpec::new(
            "overdrive",
            "drive current in units of Ic (used when voltage_v = 0)",
            overdrive_default,
        ),
        ParamSpec::new(
            "pitch",
            "array pitch (nm); 0: isolated victim, no stray field",
            0.0,
        ),
        ParamSpec::new(
            "np",
            "aggressor neighbourhood pattern NP8 (0..=255, with pitch > 0)",
            255.0,
        ),
        ParamSpec::new("hz_oe", "extra applied out-of-plane field (Oe)", 0.0),
        ParamSpec::new("trajectories", "Monte-Carlo replicas", trajectories_default),
        ParamSpec::new("seed", "ensemble RNG seed", 7.0),
        ParamSpec::new("dt_ps", "integrator time step (ps)", dt_ps_default),
        ParamSpec::new(
            "thermal",
            "1: thermal fluctuation field active during the pulse",
            1.0,
        ),
    ]
}

/// Resolves the shared dynamics parameters into a calibrated macrospin
/// operating point.
fn resolve_dynamics_point(
    scenario: &'static str,
    params: &ParamSet,
) -> Result<DynamicsPoint, EngineError> {
    let (segments, exact) = field_model_of(params)?;
    let device = presets::imec_like_with(Nanometer::new(params.number("ecd")?), segments, exact)
        .map_err(|e| model_err(scenario, e))?;
    let direction = match params.text("direction")? {
        "ap2p" => SwitchDirection::ApToP,
        "p2ap" => SwitchDirection::PToAp,
        other => {
            return Err(EngineError::InvalidParameter {
                name: "direction".into(),
                message: format!("expected `ap2p` or `p2ap`, got `{other}`"),
            })
        }
    };
    let temperature = Kelvin::new(params.number("temperature_k")?);

    let mut hz = params.number("hz_oe")?;
    let pitch = params.number("pitch")?;
    if pitch > 0.0 {
        let np_bits = params.count("np")?;
        if np_bits > 255 {
            return Err(EngineError::InvalidParameter {
                name: "np".into(),
                message: format!("pattern byte must be 0..=255, got {np_bits}"),
            });
        }
        // Served by the process-wide stray-field kernel cache.
        let analyzer = CouplingAnalyzer::new(device.clone(), Nanometer::new(pitch))
            .map_err(|e| model_err(scenario, e))?;
        hz += analyzer
            .total_hz(NeighborhoodPattern::new(np_bits as u8))
            .value();
    }
    let hz_stray = Oersted::new(hz);

    let macrospin = MacrospinParams::from_device(&device, direction, temperature)
        .map_err(|e| model_err(scenario, e))?
        .with_applied_hz(hz_stray);

    let voltage_v = params.number("voltage_v")?;
    if voltage_v < 0.0 || !voltage_v.is_finite() {
        // Falling through to overdrive mode here would silently simulate
        // a different operating point; polarity does not select the
        // write direction (use --direction).
        return Err(EngineError::InvalidParameter {
            name: "voltage_v".into(),
            message: format!("must be >= 0 (0 selects --overdrive mode), got {voltage_v}"),
        });
    }
    let (drive, voltage) = if voltage_v > 0.0 {
        let vp = Volt::new(voltage_v);
        let current = device
            .electrical()
            .current(direction.initial_state(), vp, device.area())
            .value();
        (current, Some(vp))
    } else {
        let over = params.number("overdrive")?;
        if !(over > 0.0) {
            return Err(EngineError::InvalidParameter {
                name: "overdrive".into(),
                message: format!("must be positive, got {over}"),
            });
        }
        (over * macrospin.critical_current(), None)
    };

    let plan = EnsemblePlan::new(
        params.count("trajectories")?,
        seed_of(params, "seed")?,
        params.number("dt_ps")? * 1e-12,
    )
    .map_err(|e| model_err(scenario, e))?
    .with_thermal(params.count("thermal")? != 0);

    Ok(DynamicsPoint {
        device,
        direction,
        temperature,
        hz_stray,
        macrospin,
        drive,
        voltage,
        plan,
    })
}

/// Monte-Carlo write error rate from s-LLGS trajectory ensembles.
struct WerMcScenario;

impl Scenario for WerMcScenario {
    fn id(&self) -> &'static str {
        "wer-mc"
    }

    fn summary(&self) -> &'static str {
        "Monte-Carlo WER from s-LLGS ensembles, vs the analytic Butler model"
    }

    fn params(&self) -> Vec<ParamSpec> {
        // Defaults sit at the validated agreement point: Δ0(253 K) ≈ 60
        // and 5× over-critical drive, where the Butler closed form is
        // quantitatively accurate (see crates/dynamics/tests/validation.rs).
        let mut specs = dynamics_specs("p2ap", 253.0, 5.0, 1024.0, 1.0);
        specs.push(ParamSpec::new("pulse_ns", "write pulse width (ns)", 1.3));
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let point = resolve_dynamics_point("wer-mc", params)?;
        let pulse_ns = params.number("pulse_ns")?;
        if !(pulse_ns > 0.0) {
            return Err(EngineError::InvalidParameter {
                name: "pulse_ns".into(),
                message: format!("must be positive, got {pulse_ns}"),
            });
        }
        let pulse = pulse_ns * 1e-9;
        let pool = WorkerPool::new(crate::scenario_workers());
        let est = wer_monte_carlo(&point.macrospin, point.drive, pulse, &point.plan, &pool);
        // Voltage drives go through the saturating device-level API (so
        // sweeps crossing the threshold keep going); overdrive mode uses
        // the identical calibrated closed form directly.
        let analytic = match point.voltage {
            Some(vp) => write_error_rate_saturating(
                &point.device,
                point.direction,
                vp,
                point.hz_stray,
                point.temperature,
                Nanosecond::new(pulse_ns),
            )
            .map_err(|e| model_err("wer-mc", e))?,
            None => point.macrospin.butler_wer(point.drive, pulse),
        };
        let diff_sigma = (est.wer - analytic) / est.std_error;
        let ic_ua = 1e6 * point.macrospin.critical_current();
        let drive_ua = 1e6 * point.drive;

        let mut table = Table::new(
            "wer-mc: Monte-Carlo write error rate (s-LLGS ensemble)",
            &["quantity", "value"],
        );
        table.push_row(&["direction", &point.direction.to_string()]);
        table.push_row(&["Hz_stray (Oe)", &format!("{:.1}", point.hz_stray.value())]);
        table.push_row(&[
            "Δ (initial state)",
            &format!("{:.1}", point.macrospin.delta_init()),
        ]);
        table.push_row(&["drive (µA)", &format!("{drive_ua:.1}")]);
        table.push_row(&["Ic (µA)", &format!("{ic_ua:.1}")]);
        table.push_row(&[
            "τD (ns)",
            &format!("{:.3}", 1e9 * point.macrospin.tau_d(point.drive)),
        ]);
        table.push_row(&["pulse (ns)", &format!("{pulse_ns:.2}")]);
        table.push_row(&["trajectories", &est.trajectories.to_string()]);
        table.push_row(&["write failures", &est.failures.to_string()]);
        table.push_row(&["WER (Monte-Carlo)", &format!("{:.5}", est.wer)]);
        table.push_row(&["WER (analytic Butler)", &format!("{analytic:.5}")]);
        table.push_row(&["(MC − analytic)/σ", &format!("{diff_sigma:+.2}")]);

        Ok(ScenarioOutput::from_table(table)
            .with_scalar("wer_mc", est.wer)
            .with_scalar("wer_analytic", analytic)
            .with_scalar("std_error", est.std_error)
            .with_scalar("diff_sigma", diff_sigma)
            .with_scalar("failures", est.failures as f64)
            .with_scalar("delta_init", point.macrospin.delta_init())
            .with_scalar("hz_stray_oe", point.hz_stray.value())
            .with_scalar("drive_ua", drive_ua)
            .with_scalar("ic_ua", ic_ua))
    }
}

/// Switching-time distributions from s-LLGS trajectory ensembles.
struct SwitchTrajScenario;

impl Scenario for SwitchTrajScenario {
    fn id(&self) -> &'static str {
        "switch-traj"
    }

    fn summary(&self) -> &'static str {
        "s-LLGS switching-time distribution under constant drive"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = dynamics_specs("ap2p", 300.0, 3.0, 512.0, 2.0);
        specs.push(ParamSpec::new("span_ns", "simulated span (ns)", 15.0));
        specs.push(ParamSpec::new("bins", "histogram bins", 30.0));
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let point = resolve_dynamics_point("switch-traj", params)?;
        let span_ns = params.number("span_ns")?;
        let bins = params.count("bins")?;
        let pool = WorkerPool::new(crate::scenario_workers());
        let dist = switching_time_distribution(
            &point.macrospin,
            point.drive,
            span_ns * 1e-9,
            &point.plan,
            bins,
            &pool,
        )
        .map_err(|e| model_err("switch-traj", e))?;

        // Sun's Eq. 3 mean on the same calibrated coefficients.
        let tau_d = point.macrospin.tau_d(point.drive);
        let delta = point.macrospin.delta_init();
        let sun_tw_ns =
            0.5 * tau_d * 1e9 * (EULER_GAMMA + (core::f64::consts::PI.powi(2) * delta / 4.0).ln());

        let mut histogram = Table::new(
            "switch-traj: first barrier-crossing time distribution",
            &["bin_center_ns", "count"],
        );
        for i in 0..dist.histogram.bins() {
            histogram.push_row(&[
                format!("{:.3}", dist.histogram.bin_center(i)),
                dist.histogram.count(i).to_string(),
            ]);
        }
        let switched_fraction = dist.switched as f64 / dist.trajectories as f64;
        // `None` marks "no switching events": the row says so in words
        // and the scalar is omitted, so NaN never reaches the CSV, the
        // sweep summary, or `PartialEq`-compared cache entries.
        let fmt_opt = |v: Option<f64>| {
            v.map_or_else(|| "n/a (none switched)".to_owned(), |v| format!("{v:.3}"))
        };
        let mut summary = Table::new("switch-traj: summary", &["quantity", "value"]);
        summary.push_row(&["direction", &point.direction.to_string()]);
        summary.push_row(&["drive (µA)", &format!("{:.1}", 1e6 * point.drive)]);
        summary.push_row(&["trajectories", &dist.trajectories.to_string()]);
        summary.push_row(&["switched", &dist.switched.to_string()]);
        summary.push_row(&["mean (ns)", &fmt_opt(dist.mean_ns)]);
        summary.push_row(&["median (ns)", &fmt_opt(dist.median_ns)]);
        summary.push_row(&["std dev (ns)", &fmt_opt(dist.std_ns)]);
        summary.push_row(&["Sun Eq. 3 mean (ns)", &format!("{sun_tw_ns:.3}")]);

        let mut out = ScenarioOutput::from_table(summary)
            .with_table(histogram)
            .with_scalar("switched_fraction", switched_fraction)
            .with_scalar("switched", dist.switched as f64);
        for (name, value) in [
            ("mean_ns", dist.mean_ns),
            ("median_ns", dist.median_ns),
            ("std_ns", dist.std_ns),
        ] {
            if let Some(value) = value {
                out = out.with_scalar(name, value);
            }
        }
        Ok(out
            .with_scalar("sun_tw_ns", sun_tw_ns)
            .with_scalar("tau_d_ns", 1e9 * tau_d)
            .with_scalar("drive_ua", 1e6 * point.drive))
    }
}

/// Array-scale Monte-Carlo write campaign: per-cell WER fault maps.
struct ArrayWerScenario;

impl Scenario for ArrayWerScenario {
    fn id(&self) -> &'static str {
        "array-wer"
    }

    fn summary(&self) -> &'static str {
        "array write campaign: per-cell s-LLGS Monte-Carlo WER fault map under a data pattern"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new(
                "pitch",
                "array pitch (nm), sweep it for WER-vs-density",
                70.0,
            ),
            ParamSpec::new("rows", "array rows", 8.0),
            ParamSpec::new("cols", "array columns", 8.0),
            ParamSpec::new(
                "pattern",
                "array data: zeros | ones | checkerboard",
                "checkerboard",
            ),
            ParamSpec::new("voltage_v", "write pulse amplitude (V)", 0.9),
            ParamSpec::new("pulse_ns", "write pulse width (ns)", 8.0),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
            ParamSpec::new("trajectories", "Monte-Carlo replicas per cell", 64.0),
            ParamSpec::new("seed", "campaign base seed", 7.0),
            ParamSpec::new("dt_ps", "integrator time step (ps)", 2.0),
            ParamSpec::new(
                "thermal",
                "1: thermal fluctuation field active during the pulse",
                1.0,
            ),
            ParamSpec::new("wer_budget", "per-cell WER fault threshold", 0.01),
        ];
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let (segments, exact) = field_model_of(params)?;
        let device =
            presets::imec_like_with(Nanometer::new(params.number("ecd")?), segments, exact)
                .map_err(|e| model_err("array-wer", e))?;
        let pitch = Nanometer::new(params.number("pitch")?);
        let rows = params.count("rows")?;
        let cols = params.count("cols")?;
        let data = DataPattern::parse(params.text("pattern")?)
            .and_then(|p| p.build(rows, cols))
            .map_err(|e| model_err("array-wer", e))?;
        let config = ArrayWerConfig {
            voltage: Volt::new(params.number("voltage_v")?),
            pulse: Nanosecond::new(params.number("pulse_ns")?),
            temperature: Kelvin::new(params.number("temperature_k")?),
            trajectories: params.count("trajectories")?,
            seed: seed_of(params, "seed")?,
            dt: params.number("dt_ps")? * 1e-12,
            thermal: params.count("thermal")? != 0,
            wer_budget: params.number("wer_budget")?,
        };
        let pool = WorkerPool::new(crate::scenario_workers());
        let report = array_wer_campaign(&device, pitch, &data, &config, &pool)
            .map_err(|e| model_err("array-wer", e))?;

        let worst_analytic = report.cells.iter().map(|c| c.analytic).fold(0.0, f64::max);
        let mut summary = Table::new("array-wer: campaign summary", &["quantity", "value"]);
        summary.push_row(&["array", &format!("{rows}x{cols}")]);
        summary.push_row(&["pattern", params.text("pattern")?]);
        summary.push_row(&["pitch (nm)", &format!("{:.1}", pitch.value())]);
        summary.push_row(&[
            "density (bits/um^2)",
            &format!("{:.2}", report.density_bits_per_um2),
        ]);
        summary.push_row(&["trajectories/cell", &config.trajectories.to_string()]);
        summary.push_row(&["WER budget", &format!("{:.1e}", report.wer_budget)]);
        summary.push_row(&["faulty cells", &report.faulty_cells().to_string()]);
        summary.push_row(&["worst cell WER (MC)", &format!("{:.5}", report.worst_wer())]);
        summary.push_row(&["mean cell WER (MC)", &format!("{:.5}", report.mean_wer())]);
        summary.push_row(&["worst cell WER (analytic)", &format!("{worst_analytic:.5}")]);
        summary.push_row(&["faulty classes", &report.faults().len().to_string()]);

        let mut map = Table::new(
            "array-wer: per-cell fault map",
            &[
                "row",
                "col",
                "stored",
                "direction",
                "np",
                "hz_oe",
                "drive_ua",
                "ic_ua",
                "failures",
                "wer_mc",
                "wer_analytic",
                "faulty",
            ],
        );
        for cell in &report.cells {
            map.push_row(&[
                cell.row.to_string(),
                cell.col.to_string(),
                cell.stored.to_string(),
                cell.direction.to_string(),
                cell.np.bits().to_string(),
                format!("{:.2}", cell.hz_stray.value()),
                format!("{:.2}", cell.drive_ua),
                format!("{:.2}", cell.ic_ua),
                cell.mc.failures.to_string(),
                format!("{:.6}", cell.mc.wer),
                format!("{:.6}", cell.analytic),
                u8::from(cell.faulty).to_string(),
            ]);
        }

        Ok(ScenarioOutput::from_table(summary)
            .with_table(map)
            .with_chart(report.fault_map())
            .with_scalar("cells", report.cells.len() as f64)
            .with_scalar("faulty_cells", report.faulty_cells() as f64)
            .with_scalar("worst_wer_mc", report.worst_wer())
            .with_scalar("mean_wer_mc", report.mean_wer())
            .with_scalar("worst_wer_analytic", worst_analytic)
            .with_scalar("density_bits_per_um2", report.density_bits_per_um2)
            .with_scalar("faulty_classes", report.faults().len() as f64))
    }
}

/// Sparse sharded write campaign: one row band of a megabit-scale grid,
/// collapsed into stored-state window equivalence classes.
struct ArrayWerShardScenario;

impl Scenario for ArrayWerShardScenario {
    fn id(&self) -> &'static str {
        "array-wer-shard"
    }

    fn summary(&self) -> &'static str {
        "sparse sharded write campaign: per-window-class Monte-Carlo WER over one row band of a megabit-scale grid"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = vec![
            ParamSpec::new("ecd", "device size (nm)", 35.0),
            ParamSpec::new(
                "pitch",
                "array pitch (nm), sweep it for WER-vs-density",
                70.0,
            ),
            ParamSpec::new("rows", "full grid rows", 256.0),
            ParamSpec::new("cols", "full grid columns", 256.0),
            ParamSpec::new(
                "pattern",
                "array data: zeros | ones | checkerboard",
                "checkerboard",
            ),
            ParamSpec::new(
                "defects",
                "stuck cells: `row,col=P;row,col=AP` (empty: none)",
                "",
            ),
            ParamSpec::new("shard_rows", "rows per shard (the memory bound)", 64.0),
            ParamSpec::new(
                "shard",
                "shard index to evaluate; `mramsim campaign` sweeps it",
                0.0,
            ),
            ParamSpec::new("max_radius", "stray-field kernel ring cap", 4.0),
            ParamSpec::new(
                "field_tol",
                "requested dipole-tail truncation accuracy (Oe)",
                25.0,
            ),
            ParamSpec::new("voltage_v", "write pulse amplitude (V)", 0.9),
            ParamSpec::new("pulse_ns", "write pulse width (ns)", 8.0),
            ParamSpec::new("temperature_k", "temperature (K)", 300.0),
            ParamSpec::new("trajectories", "Monte-Carlo replicas per class", 64.0),
            ParamSpec::new("seed", "campaign base seed", 7.0),
            ParamSpec::new("dt_ps", "integrator time step (ps)", 2.0),
            ParamSpec::new(
                "thermal",
                "1: thermal fluctuation field active during the pulse",
                1.0,
            ),
            ParamSpec::new("wer_budget", "per-cell WER fault threshold", 0.01),
        ];
        specs.extend(field_model_specs());
        specs
    }

    fn run(&self, params: &ParamSet) -> Result<ScenarioOutput, EngineError> {
        let (segments, exact) = field_model_of(params)?;
        let device =
            presets::imec_like_with(Nanometer::new(params.number("ecd")?), segments, exact)
                .map_err(|e| model_err("array-wer-shard", e))?;
        let pitch = Nanometer::new(params.number("pitch")?);
        let rows = params.count("rows")?;
        let cols = params.count("cols")?;
        let defects = Defect::parse_list(params.text("defects")?)
            .map_err(|e| model_err("array-wer-shard", e))?;
        let n_defects = defects.len();
        let grid = DataPattern::parse(params.text("pattern")?)
            .and_then(|pattern| PatternGrid::new(rows, cols, pattern))
            .and_then(|grid| grid.with_defects(defects))
            .map_err(|e| model_err("array-wer-shard", e))?;
        let plan = ShardPlan::new(rows, params.count("shard_rows")?)
            .map_err(|e| model_err("array-wer-shard", e))?;
        let shard = params.count("shard")?;
        let config = SparseWerConfig {
            base: ArrayWerConfig {
                voltage: Volt::new(params.number("voltage_v")?),
                pulse: Nanosecond::new(params.number("pulse_ns")?),
                temperature: Kelvin::new(params.number("temperature_k")?),
                trajectories: params.count("trajectories")?,
                seed: seed_of(params, "seed")?,
                dt: params.number("dt_ps")? * 1e-12,
                thermal: params.count("thermal")? != 0,
                wer_budget: params.number("wer_budget")?,
            },
            max_radius: params.count("max_radius")?,
            field_tol: Oersted::new(params.number("field_tol")?),
        };
        let pool = WorkerPool::new(crate::scenario_workers());
        let report = shard_wer_campaign(&device, pitch, &grid, &plan, shard, &config, &pool)
            .map_err(|e| model_err("array-wer-shard", e))?;

        let worst_analytic = report
            .classes
            .iter()
            .map(|c| c.analytic)
            .fold(0.0, f64::max);
        let mut summary = Table::new("array-wer-shard: shard summary", &["quantity", "value"]);
        summary.push_row(&["grid", &format!("{rows}x{cols}")]);
        summary.push_row(&[
            "shard",
            &format!(
                "{} of {} (rows {}..{})",
                report.shard,
                plan.n_shards(),
                report.row_lo,
                report.row_hi
            ),
        ]);
        summary.push_row(&["pattern", params.text("pattern")?]);
        summary.push_row(&["defects", &n_defects.to_string()]);
        summary.push_row(&["pitch (nm)", &format!("{:.1}", pitch.value())]);
        summary.push_row(&[
            "density (bits/um^2)",
            &format!("{:.2}", report.density_bits_per_um2),
        ]);
        summary.push_row(&["kernel radius (rings)", &report.radius.to_string()]);
        summary.push_row(&[
            "tail bound (Oe)",
            &format!("{:.2}", report.tail_bound.value()),
        ]);
        summary.push_row(&["tolerance met", &u8::from(report.tol_met).to_string()]);
        summary.push_row(&["cells", &report.cells().to_string()]);
        summary.push_row(&["classes", &report.classes.len().to_string()]);
        summary.push_row(&["faulty cells", &report.faulty_cells().to_string()]);
        summary.push_row(&[
            "worst class WER (MC)",
            &format!("{:.5}", report.worst_wer()),
        ]);
        summary.push_row(&["mean cell WER (MC)", &format!("{:.5}", report.mean_wer())]);
        summary.push_row(&[
            "worst class WER (analytic)",
            &format!("{worst_analytic:.5}"),
        ]);

        let mut classes = Table::new(
            "array-wer-shard: window classes",
            &[
                "window_key",
                "rep_row",
                "rep_col",
                "count",
                "stored",
                "direction",
                "np",
                "hz_oe",
                "drive_ua",
                "ic_ua",
                "failures",
                "wer_mc",
                "wer_analytic",
                "faulty",
            ],
        );
        for class in &report.classes {
            classes.push_row(&[
                format!("{:016x}", class.window_key),
                class.representative.0.to_string(),
                class.representative.1.to_string(),
                class.count.to_string(),
                class.stored.to_string(),
                class.direction.to_string(),
                class.np.bits().to_string(),
                format!("{:.2}", class.hz_stray.value()),
                format!("{:.2}", class.drive_ua),
                format!("{:.2}", class.ic_ua),
                class.mc.failures.to_string(),
                format!("{:.6}", class.mc.wer),
                format!("{:.6}", class.analytic),
                u8::from(class.faulty).to_string(),
            ]);
        }

        Ok(ScenarioOutput::from_table(summary)
            .with_table(classes)
            .with_scalar("cells", report.cells() as f64)
            .with_scalar("classes", report.classes.len() as f64)
            .with_scalar("faulty_cells", report.faulty_cells() as f64)
            .with_scalar("worst_wer_mc", report.worst_wer())
            .with_scalar("mean_wer_mc", report.mean_wer())
            .with_scalar("worst_wer_analytic", worst_analytic)
            .with_scalar("radius", report.radius as f64)
            .with_scalar("tail_bound_oe", report.tail_bound.value())
            .with_scalar("tol_met", f64::from(u8::from(report.tol_met)))
            .with_scalar("density_bits_per_um2", report.density_bits_per_um2)
            .with_scalar("n_shards", plan.n_shards() as f64)
            .with_scalar("row_lo", report.row_lo as f64)
            .with_scalar("row_hi", report.row_hi as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_seventeen_scenarios() {
        let registry = Registry::standard();
        assert_eq!(registry.len(), 17);
        let ids: Vec<&str> = registry.ids().collect();
        for id in [
            "array-wer",
            "array-wer-shard",
            "ext_wer",
            "explore",
            "faults",
            "fig2a",
            "fig2b",
            "fig3c",
            "fig3d",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5",
            "fig6a",
            "fig6b",
            "switch-traj",
            "wer-mc",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
        // BTreeMap keeps the listing sorted for the CLI.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn fig4b_point_mode_matches_a_direct_analyzer_call() {
        let scenario = Fig4bScenario;
        let params = ParamSet::defaults(&scenario.params())
            .with("pitch", 90.0)
            .with("ecd", 55.0);
        let out = scenario.run(&params).unwrap();
        let device = presets::imec_like(Nanometer::new(55.0)).unwrap();
        let expected = CouplingAnalyzer::new(device, Nanometer::new(90.0))
            .unwrap()
            .psi(presets::MEASURED_HC);
        assert!((out.scalar("psi").unwrap() - expected).abs() < 1e-15);
    }

    #[test]
    fn field_model_knobs_are_engine_parameters() {
        // `--segments` / `--exact` reach the device model: the exact
        // backend and a coarse polygon agree on Ψ to well under a
        // percent, and all three fingerprints are distinct cache keys.
        let scenario = Fig4bScenario;
        let base = ParamSet::defaults(&scenario.params())
            .with("pitch", 90.0)
            .with("ecd", 55.0);
        let coarse = base.clone().with("segments", 48.0);
        let exact = base.clone().with("exact", 1.0);
        let psi_base = scenario.run(&base).unwrap().scalar("psi").unwrap();
        let psi_coarse = scenario.run(&coarse).unwrap().scalar("psi").unwrap();
        let psi_exact = scenario.run(&exact).unwrap().scalar("psi").unwrap();
        assert!((psi_base - psi_exact).abs() < 1e-3 * psi_exact);
        assert!((psi_coarse - psi_exact).abs() < 1e-2 * psi_exact);
        assert_ne!(base.fingerprint(), coarse.fingerprint());
        assert_ne!(base.fingerprint(), exact.fingerprint());
    }

    #[test]
    fn faults_scenario_shares_the_array_wer_pattern_vocabulary() {
        let scenario = FaultsScenario;
        let params = ParamSet::defaults(&scenario.params()).with("pattern", "stripes");
        assert!(matches!(
            scenario.run(&params),
            Err(EngineError::Scenario { .. })
        ));
        // `ones` parses for both scenarios since both go through
        // `DataPattern::parse` (regression: the faults scenario had its
        // own two-name parser).
        let ones = ParamSet::defaults(&scenario.params())
            .with("pattern", "ones")
            .with("rows", 3.0)
            .with("cols", 3.0);
        assert!(scenario.run(&ones).is_ok());
    }

    #[test]
    fn wer_mc_is_deterministic_and_mc_params_are_cache_keys() {
        let scenario = WerMcScenario;
        let base = ParamSet::defaults(&scenario.params()).with("trajectories", 96.0);
        let a = scenario.run(&base).unwrap();
        let b = scenario.run(&base).unwrap();
        assert_eq!(
            a.scalar("wer_mc").unwrap(),
            b.scalar("wer_mc").unwrap(),
            "same seed must reproduce the same WER bit-for-bit"
        );
        // --trajectories/--seed/--dt_ps are part of the content address.
        for (name, value) in [("trajectories", 128.0), ("seed", 8.0), ("dt_ps", 2.0)] {
            assert_ne!(
                base.fingerprint(),
                base.clone().with(name, value).fingerprint(),
                "{name} must change the cache key"
            );
        }
    }

    #[test]
    fn wer_mc_stray_field_worsens_the_error_rate() {
        // A hostile neighbourhood (negative stray: intra + all-P
        // aggressors at tight pitch) raises Ic for an AP→P write, and
        // at fixed voltage and pulse width the analytic WER must not
        // improve.
        let scenario = WerMcScenario;
        let isolated = ParamSet::defaults(&scenario.params())
            .with("direction", "ap2p")
            .with("trajectories", 64.0)
            .with("voltage_v", 1.1);
        let coupled = isolated.clone().with("pitch", 60.0).with("np", 0.0);
        let a = scenario.run(&isolated).unwrap();
        let b = scenario.run(&coupled).unwrap();
        assert_eq!(a.scalar("hz_stray_oe").unwrap(), 0.0);
        assert!(b.scalar("hz_stray_oe").unwrap() < -100.0);
        assert!(b.scalar("ic_ua").unwrap() > a.scalar("ic_ua").unwrap());
        assert!(b.scalar("wer_analytic").unwrap() >= a.scalar("wer_analytic").unwrap());
    }

    #[test]
    fn dynamics_scenarios_reject_bad_directions_and_patterns() {
        let scenario = WerMcScenario;
        let bad_dir = ParamSet::defaults(&scenario.params()).with("direction", "sideways");
        assert!(matches!(
            scenario.run(&bad_dir),
            Err(EngineError::InvalidParameter { .. })
        ));
        let bad_np = ParamSet::defaults(&scenario.params())
            .with("pitch", 70.0)
            .with("np", 300.0);
        assert!(matches!(
            scenario.run(&bad_np),
            Err(EngineError::InvalidParameter { .. })
        ));
        // A negative voltage must not silently fall through to the
        // overdrive default (a completely different operating point).
        let bad_v = ParamSet::defaults(&scenario.params()).with("voltage_v", -1.1);
        assert!(matches!(
            scenario.run(&bad_v),
            Err(EngineError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn switch_traj_histogram_accounts_for_every_switched_replica() {
        let scenario = SwitchTrajScenario;
        let params = ParamSet::defaults(&scenario.params())
            .with("trajectories", 64.0)
            .with("span_ns", 10.0);
        let out = scenario.run(&params).unwrap();
        let switched = out.scalar("switched_fraction").unwrap() * 64.0;
        let counted: u64 = out.tables[1]
            .to_csv()
            .lines()
            .skip(1) // header
            .map(|line| line.rsplit(',').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert!(switched >= 60.0, "3x-overdrive ensemble barely switched");
        assert_eq!(counted, switched.round() as u64);
        // The MC mean sits on Sun's Eq. 3 scale.
        let mean = out.scalar("mean_ns").unwrap();
        let sun = out.scalar("sun_tw_ns").unwrap();
        assert!(
            mean > 0.4 * sun && mean < 2.5 * sun,
            "mean {mean} vs Sun {sun}"
        );
    }

    #[test]
    fn array_wer_is_deterministic_and_campaign_params_are_cache_keys() {
        let scenario = ArrayWerScenario;
        let base = ParamSet::defaults(&scenario.params())
            .with("rows", 3.0)
            .with("cols", 3.0)
            .with("trajectories", 32.0)
            .with("pulse_ns", 4.0);
        let a = scenario.run(&base).unwrap();
        let b = scenario.run(&base).unwrap();
        assert_eq!(a, b, "seeded campaign must reproduce bit-for-bit");
        // The campaign knobs are all part of the content address.
        for (name, value) in [
            ("rows", 4.0),
            ("cols", 4.0),
            ("trajectories", 64.0),
            ("seed", 8.0),
            ("pitch", 80.0),
        ] {
            assert_ne!(
                base.fingerprint(),
                base.clone().with(name, value).fingerprint(),
                "{name} must change the cache key"
            );
        }
        assert_ne!(
            base.fingerprint(),
            base.clone().with("pattern", "zeros").fingerprint(),
            "pattern must change the cache key"
        );
    }

    #[test]
    fn array_wer_rejects_bad_patterns_and_dimensions() {
        let scenario = ArrayWerScenario;
        for (name, value) in [("pattern", "stripes"), ("pattern", "")] {
            let params = ParamSet::defaults(&scenario.params()).with(name, value);
            assert!(matches!(
                scenario.run(&params),
                Err(EngineError::InvalidParameter { .. }) | Err(EngineError::Scenario { .. })
            ));
        }
        let empty = ParamSet::defaults(&scenario.params()).with("rows", 0.0);
        assert!(scenario.run(&empty).is_err(), "0-row array must not panic");
        // 1x1 is the degenerate-but-valid isolated victim.
        let single = ParamSet::defaults(&scenario.params())
            .with("rows", 1.0)
            .with("cols", 1.0)
            .with("trajectories", 16.0)
            .with("pulse_ns", 4.0);
        let out = scenario.run(&single).unwrap();
        assert_eq!(out.scalar("cells"), Some(1.0));
    }

    #[test]
    fn array_wer_shard_covers_its_band_and_knobs_are_cache_keys() {
        let scenario = ArrayWerShardScenario;
        let base = ParamSet::defaults(&scenario.params())
            .with("rows", 32.0)
            .with("cols", 24.0)
            .with("shard_rows", 16.0)
            .with("shard", 1.0)
            .with("trajectories", 16.0)
            .with("max_radius", 2.0)
            .with("field_tol", 60.0)
            .with("defects", "20,5=AP");
        let out = scenario.run(&base).unwrap();
        assert_eq!(out.scalar("cells"), Some(16.0 * 24.0));
        assert_eq!(out.scalar("n_shards"), Some(2.0));
        assert_eq!(out.scalar("row_lo"), Some(16.0));
        assert!(out.scalar("classes").unwrap() < out.scalar("cells").unwrap());
        assert!(out.scalar("radius").unwrap() >= 1.0);
        assert!(out.scalar("tail_bound_oe").unwrap() > 0.0);
        assert_eq!(out, scenario.run(&base).unwrap(), "bit-identical repeat");
        // The sharding and accuracy knobs are all content-address keys.
        for (name, value) in [
            ("shard", 0.0),
            ("shard_rows", 8.0),
            ("max_radius", 1.0),
            ("field_tol", 30.0),
        ] {
            assert_ne!(
                base.fingerprint(),
                base.clone().with(name, value).fingerprint(),
                "{name} must change the cache key"
            );
        }
        assert_ne!(
            base.fingerprint(),
            base.clone().with("defects", "20,5=P").fingerprint(),
            "defects must change the cache key"
        );
        // Malformed defects and out-of-range shards are rejected.
        let bad = ParamSet::defaults(&scenario.params()).with("defects", "nope");
        assert!(matches!(
            scenario.run(&bad),
            Err(EngineError::Scenario { .. })
        ));
        let oob = base.clone().with("shard", 9.0);
        assert!(
            scenario.run(&oob).is_err(),
            "shard past the plan must error"
        );
    }

    #[test]
    fn explore_scenario_reports_the_design_rule() {
        let scenario = ExploreScenario;
        let out = scenario
            .run(&ParamSet::defaults(&scenario.params()))
            .unwrap();
        let ratio = out.scalar("recommended_pitch_nm").unwrap() / 35.0;
        assert!(ratio > 1.7 && ratio < 2.7, "ratio = {ratio}");
    }
}
