//! Scenario parameters: typed values, named sets, and declared specs.
//!
//! Every scenario consumes a flat, string-keyed [`ParamSet`]. That
//! uniformity is what lets one sweep planner, one cache, and one CLI
//! drive sixteen very different drivers: a parameter point is just a
//! map, and its canonical [`ParamSet::fingerprint`] is the content
//! address the result cache keys on.

use crate::EngineError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A scalar number (also used for integer-valued parameters).
    Number(f64),
    /// A list of numbers (grids, pitch factors, pulse widths, …).
    List(Vec<f64>),
    /// Free text (pattern names, modes).
    Text(String),
}

impl ParamValue {
    fn write_fingerprint(&self, out: &mut String) {
        match self {
            // Bit-exact so 0.1+0.2 and 0.3 are different cache keys.
            Self::Number(n) => write!(out, "n{:016x}", n.to_bits()).expect("string write"),
            Self::List(xs) => {
                out.push('[');
                for x in xs {
                    write!(out, "{:016x},", x.to_bits()).expect("string write");
                }
                out.push(']');
            }
            Self::Text(t) => write!(out, "t{t}").expect("string write"),
        }
    }

    /// Renders the value the way the CLI accepts it back.
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            Self::Number(n) => format!("{n}"),
            Self::List(xs) => xs
                .iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(","),
            Self::Text(t) => t.clone(),
        }
    }
}

impl From<f64> for ParamValue {
    fn from(n: f64) -> Self {
        Self::Number(n)
    }
}

impl From<Vec<f64>> for ParamValue {
    fn from(xs: Vec<f64>) -> Self {
        Self::List(xs)
    }
}

impl From<&str> for ParamValue {
    fn from(t: &str) -> Self {
        Self::Text(t.to_owned())
    }
}

/// A declared scenario parameter: name, documentation, and default.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as used by the CLI and [`ParamSet`].
    pub name: &'static str,
    /// One-line description shown by `mramsim list`.
    pub doc: &'static str,
    /// The default value.
    pub default: ParamValue,
}

impl ParamSpec {
    /// A new spec.
    #[must_use]
    pub fn new(name: &'static str, doc: &'static str, default: impl Into<ParamValue>) -> Self {
        Self {
            name,
            doc,
            default: default.into(),
        }
    }
}

/// A named set of parameter values.
///
/// # Examples
///
/// ```
/// use mramsim_engine::ParamSet;
///
/// let p = ParamSet::new().with("ecd", 35.0).with("pitch", 70.0);
/// assert_eq!(p.number("ecd").unwrap(), 35.0);
/// assert_ne!(
///     p.fingerprint(),
///     ParamSet::new().with("ecd", 55.0).with("pitch", 70.0).fingerprint(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamSet {
    values: BTreeMap<String, ParamValue>,
}

impl ParamSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding every spec's default.
    #[must_use]
    pub fn defaults(specs: &[ParamSpec]) -> Self {
        let mut set = Self::new();
        for spec in specs {
            set.insert(spec.name, spec.default.clone());
        }
        set
    }

    /// Inserts (or replaces) a value.
    pub fn insert(&mut self, name: &str, value: impl Into<ParamValue>) {
        self.values.insert(name.to_owned(), value.into());
    }

    /// Builder-style [`ParamSet::insert`].
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.insert(name, value);
        self
    }

    /// Whether `name` is present.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// The raw value, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The scalar value of `name`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] when missing or not a number.
    pub fn number(&self, name: &str) -> Result<f64, EngineError> {
        match self.values.get(name) {
            Some(ParamValue::Number(n)) => Ok(*n),
            Some(other) => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: format!("expected a number, got `{}`", other.display()),
            }),
            None => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: "missing".into(),
            }),
        }
    }

    /// The value of `name` as a non-negative integer.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] when missing, fractional, or
    /// negative.
    pub fn count(&self, name: &str) -> Result<usize, EngineError> {
        let n = self.number(name)?;
        if n < 0.0 || n.fract() != 0.0 || n > 1e12 {
            return Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: format!("expected a non-negative integer, got {n}"),
            });
        }
        Ok(n as usize)
    }

    /// The value of `name` as a list (a scalar becomes a 1-list).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] when missing or text.
    pub fn list(&self, name: &str) -> Result<Vec<f64>, EngineError> {
        match self.values.get(name) {
            Some(ParamValue::List(xs)) => Ok(xs.clone()),
            Some(ParamValue::Number(n)) => Ok(vec![*n]),
            Some(ParamValue::Text(t)) => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: format!("expected numbers, got `{t}`"),
            }),
            None => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: "missing".into(),
            }),
        }
    }

    /// The text value of `name`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParameter`] when missing or not text.
    pub fn text(&self, name: &str) -> Result<&str, EngineError> {
        match self.values.get(name) {
            Some(ParamValue::Text(t)) => Ok(t),
            Some(other) => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: format!("expected text, got `{}`", other.display()),
            }),
            None => Err(EngineError::InvalidParameter {
                name: name.to_owned(),
                message: "missing".into(),
            }),
        }
    }

    /// The canonical content fingerprint: name-sorted, bit-exact.
    /// Equal sets produce equal fingerprints and vice versa.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            out.push_str(name);
            out.push('=');
            value.write_fingerprint(&mut out);
            out.push(';');
        }
        out
    }
}

/// Parses a CLI value specification into a [`ParamValue`].
///
/// Accepted forms:
///
/// * `42` / `-1.5e-9` — a number,
/// * `20,35,55` — a list,
/// * `60..240:20` — an inclusive range with a step,
/// * anything else — text.
///
/// # Errors
///
/// [`EngineError::InvalidParameter`] for a malformed or non-positive
/// range step.
///
/// # Examples
///
/// ```
/// use mramsim_engine::{parse_value, ParamValue};
///
/// assert_eq!(parse_value("p", "70").unwrap(), ParamValue::Number(70.0));
/// assert_eq!(
///     parse_value("p", "60..120:30").unwrap(),
///     ParamValue::List(vec![60.0, 90.0, 120.0]),
/// );
/// ```
pub fn parse_value(name: &str, spec: &str) -> Result<ParamValue, EngineError> {
    if let Ok(n) = spec.parse::<f64>() {
        return Ok(ParamValue::Number(n));
    }
    if let Some((range, step)) = spec.split_once(':') {
        if let Some((lo, hi)) = range.split_once("..") {
            let parse = |s: &str, what: &str| {
                s.parse::<f64>().map_err(|_| EngineError::InvalidParameter {
                    name: name.to_owned(),
                    message: format!("bad {what} `{s}` in range `{spec}`"),
                })
            };
            let lo = parse(lo, "start")?;
            let hi = parse(hi, "end")?;
            let step = parse(step, "step")?;
            if !(step > 0.0) || !(hi >= lo) || !lo.is_finite() || !hi.is_finite() {
                return Err(EngineError::InvalidParameter {
                    name: name.to_owned(),
                    message: format!("range `{spec}` needs finite end >= start and step > 0"),
                });
            }
            let span_steps = (hi - lo) / step;
            if span_steps > 1e6 {
                return Err(EngineError::InvalidParameter {
                    name: name.to_owned(),
                    message: format!(
                        "range `{spec}` expands to {:.0} points (limit 1e6); use a larger step",
                        span_steps + 1.0
                    ),
                });
            }
            // The grid is every `lo + i*step` that does not overshoot
            // `hi`; the endpoint is then handled explicitly — `hi` is
            // always included when it sits within half a step of the
            // last grid point, and nothing ever exceeds `hi`
            // (regression: `0..1:0.4` rounded to n=3, generated 1.2,
            // dropped it, and silently excluded the endpoint 1.0).
            let tol = 1e-9 * step;
            let n = (span_steps + 1e-9).floor() as usize;
            let mut xs: Vec<f64> = (0..=n).map(|i| lo + step * i as f64).collect();
            let last = *xs.last().expect("0..=n is never empty");
            // Snapping is strictly a float-noise repair (so `60..240:20`
            // ends at exactly 240.0); it must stay well below the span,
            // or a step many orders larger than the range would rewrite
            // the lone grid point `lo` into `hi` instead of appending.
            let snap = tol.min(0.5 * (hi - lo));
            if hi - last <= snap {
                *xs.last_mut().expect("non-empty") = hi;
            } else if hi - last <= 0.5 * step + tol {
                xs.push(hi);
            }
            return Ok(ParamValue::List(xs));
        }
    }
    if spec.contains(',') {
        let xs: Result<Vec<f64>, _> = spec.split(',').map(str::trim).map(str::parse).collect();
        if let Ok(xs) = xs {
            return Ok(ParamValue::List(xs));
        }
    }
    Ok(ParamValue::Text(spec.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_independent_and_bit_exact() {
        let a = ParamSet::new().with("x", 1.0).with("y", 2.0);
        let b = ParamSet::new().with("y", 2.0).with("x", 1.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ParamSet::new().with("x", 1.0 + 1e-16).with("y", 2.0);
        // 1.0 + 1e-16 rounds to 1.0 exactly; a genuinely different bit
        // pattern must change the fingerprint.
        assert_eq!(a.fingerprint(), c.fingerprint());
        let d = ParamSet::new().with("x", 1.0000000001).with("y", 2.0);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn typed_accessors_enforce_kinds() {
        let p = ParamSet::new()
            .with("n", 3.0)
            .with("xs", vec![1.0, 2.0])
            .with("mode", "checkerboard");
        assert_eq!(p.number("n").unwrap(), 3.0);
        assert_eq!(p.count("n").unwrap(), 3);
        assert_eq!(p.list("xs").unwrap(), vec![1.0, 2.0]);
        assert_eq!(p.list("n").unwrap(), vec![3.0]);
        assert_eq!(p.text("mode").unwrap(), "checkerboard");
        assert!(p.number("xs").is_err());
        assert!(p.text("n").is_err());
        assert!(p.number("missing").is_err());
        assert!(p.count("mode").is_err());
    }

    #[test]
    fn count_rejects_fractions_and_negatives() {
        let p = ParamSet::new().with("a", 2.5).with("b", -1.0);
        assert!(p.count("a").is_err());
        assert!(p.count("b").is_err());
    }

    #[test]
    fn parse_value_forms() {
        assert_eq!(
            parse_value("p", "-3e2").unwrap(),
            ParamValue::Number(-300.0)
        );
        assert_eq!(
            parse_value("p", "20, 35,55").unwrap(),
            ParamValue::List(vec![20.0, 35.0, 55.0])
        );
        assert_eq!(
            parse_value("p", "60..240:60").unwrap(),
            ParamValue::List(vec![60.0, 120.0, 180.0, 240.0])
        );
        assert_eq!(
            parse_value("p", "checkerboard").unwrap(),
            ParamValue::Text("checkerboard".into())
        );
        assert!(parse_value("p", "10..0:5").is_err());
        assert!(parse_value("p", "0..10:0").is_err());
    }

    fn range(spec: &str) -> Vec<f64> {
        let ParamValue::List(xs) = parse_value("p", spec).unwrap() else {
            panic!("`{spec}` did not parse to a list");
        };
        xs
    }

    #[test]
    fn range_endpoint_is_inclusive_without_overshoot() {
        let xs = range("60..240:20");
        assert_eq!(xs.len(), 10);
        assert_eq!(xs[0], 60.0);
        assert_eq!(*xs.last().unwrap(), 240.0);
    }

    #[test]
    fn range_includes_hi_when_within_half_a_step() {
        // Regression: `0..1:0.4` rounded to n=3, generated 1.2, dropped
        // it in the retain, and silently excluded the endpoint.
        assert_eq!(range("0..1:0.4"), vec![0.0, 0.4, 0.8, 1.0]);
        // hi exactly half a step past the grid is still included …
        assert_eq!(range("0..10:4"), vec![0.0, 4.0, 8.0, 10.0]);
        // … but more than half a step away it is not.
        assert_eq!(range("0..1:0.6"), vec![0.0, 0.6]);
        // Nothing ever overshoots hi.
        for spec in ["0..1:0.4", "0..1:0.3", "0..0.3:0.1", "5..7:0.7"] {
            let xs = range(spec);
            assert!(
                xs.iter().all(|&x| x <= xs.last().copied().unwrap()),
                "{spec}: {xs:?} not sorted to its max"
            );
            assert!(
                *xs.last().unwrap()
                    <= spec
                        .split("..")
                        .nth(1)
                        .unwrap()
                        .split(':')
                        .next()
                        .unwrap()
                        .parse::<f64>()
                        .unwrap(),
                "{spec} overshot: {xs:?}"
            );
        }
        // Accumulated float error still snaps the endpoint exactly.
        assert_eq!(*range("0..0.3:0.1").last().unwrap(), 0.3);
    }

    #[test]
    fn degenerate_and_abusive_ranges() {
        // hi == lo is one point.
        assert_eq!(range("7..7:2"), vec![7.0]);
        // A step larger than the span keeps lo and picks up hi only if
        // it is within half a step.
        assert_eq!(range("0..1:10"), vec![0.0, 1.0]);
        assert_eq!(range("0..1:3"), vec![0.0, 1.0]);
        // … even a step so large that the snap tolerance (1e-9·step)
        // exceeds the whole span (regression: the endpoint snap
        // rewrote the lone grid point `lo` into `hi`).
        assert_eq!(range("0..1:1e9"), vec![0.0, 1.0]);
        assert_eq!(range("5..5.5:1e12"), vec![5.0, 5.5]);
        // A tiny step on a huge span is rejected before allocating.
        let err = parse_value("p", "0..1:1e-9").unwrap_err();
        assert!(err.to_string().contains("limit 1e6"), "{err}");
        assert!(parse_value("p", "0..inf:1").is_err());
        assert!(parse_value("p", "0..NaN:1").is_err());
    }

    #[test]
    fn defaults_come_from_specs() {
        let specs = [
            ParamSpec::new("ecd", "size", 35.0),
            ParamSpec::new("grid", "points", vec![1.0, 2.0]),
        ];
        let p = ParamSet::defaults(&specs);
        assert_eq!(p.number("ecd").unwrap(), 35.0);
        assert_eq!(p.list("grid").unwrap(), vec![1.0, 2.0]);
    }
}
