//! The [`Engine`]: cache-aware scenario execution and parallel sweeps.

use crate::cache::{CacheStats, ResultCache};
use crate::{EngineError, ParamSet, Registry, ScenarioOutput, SweepPlan};
use mramsim_core::report::Table;
use mramsim_numerics::pool::WorkerPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

thread_local! {
    /// Inner-parallelism budget the sweep executor hands to scenarios
    /// running on its worker threads (`None` outside a sweep).
    static SCENARIO_WORKERS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The worker-pool width a scenario should use for its *own* internal
/// parallelism (e.g. the Monte-Carlo trajectory ensembles): the
/// machine's full parallelism when the scenario runs directly, and the
/// per-job share when it runs inside a parallel [`Engine::sweep`] —
/// whose workers already occupy the cores.
#[must_use]
pub fn scenario_workers() -> usize {
    SCENARIO_WORKERS
        .get()
        .unwrap_or_else(|| WorkerPool::with_default_parallelism().workers())
}

/// The outcome of one cache-aware [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scenario output (shared with the cache).
    pub output: Arc<ScenarioOutput>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Wall-clock time of this call (≈0 for hits).
    pub duration: Duration,
}

/// One job of a sweep: the grid point and its result.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The axis values of this grid point, in axis order.
    pub point: Vec<(String, f64)>,
    /// The fully resolved parameters the job ran with.
    pub params: ParamSet,
    /// The result, or the rendered error.
    pub result: Result<Arc<ScenarioOutput>, String>,
    /// Whether this job was served from the cache.
    pub cache_hit: bool,
}

/// The outcome of one [`Engine::sweep`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The swept scenario id.
    pub scenario: String,
    /// One entry per grid point, in deterministic expansion order.
    pub jobs: Vec<SweepJob>,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Jobs that failed.
    pub errors: usize,
    /// Wall-clock time of the whole sweep.
    pub duration: Duration,
}

impl SweepOutcome {
    /// Summarises the grid as one table: axis columns plus every
    /// headline scalar of the scenario, one row per job. When any job
    /// failed, a trailing `status` column carries the error so an
    /// all-failed sweep can never masquerade as a successful one.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let axis_names: Vec<&str> = self
            .jobs
            .first()
            .map(|j| j.point.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();
        let scalar_names: Vec<&str> = self
            .jobs
            .iter()
            .find_map(|j| j.result.as_ref().ok())
            .map(|out| out.scalars.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();
        let with_status = self.errors > 0 || (axis_names.is_empty() && scalar_names.is_empty());
        let mut columns: Vec<&str> = axis_names.clone();
        columns.extend(&scalar_names);
        if with_status {
            columns.push("status");
        }
        let mut table = Table::new(
            &format!("sweep: {} ({} points)", self.scenario, self.jobs.len()),
            &columns,
        );
        for job in &self.jobs {
            let mut row: Vec<String> = job.point.iter().map(|(_, v)| format!("{v}")).collect();
            for name in &scalar_names {
                row.push(match &job.result {
                    Ok(out) => out
                        .scalar(name)
                        .map_or_else(|| "-".to_owned(), |v| format!("{v:.6}")),
                    Err(_) => "-".to_owned(),
                });
            }
            if with_status {
                row.push(match &job.result {
                    Ok(_) => "ok".to_owned(),
                    Err(e) => format!("error: {e}"),
                });
            }
            table.push_row(&row);
        }
        table
    }
}

/// The unified scenario-execution engine.
///
/// Owns a [`Registry`], a content-addressed [`ResultCache`], and a
/// [`WorkerPool`]; every run — single or swept — flows through the
/// same resolve → cache-lookup → execute → insert path.
///
/// # Examples
///
/// ```
/// use mramsim_engine::{Engine, ParamSet};
///
/// let engine = Engine::standard();
/// let first = engine.run("fig4a", &ParamSet::new())?;
/// let again = engine.run("fig4a", &ParamSet::new())?;
/// assert!(!first.cache_hit && again.cache_hit);
/// # Ok::<(), mramsim_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    registry: Registry,
    cache: ResultCache,
    pool: WorkerPool,
    base_seed: u64,
}

impl Engine {
    /// An engine over the standard registry and default parallelism.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(Registry::standard())
    }

    /// An engine over a custom registry.
    #[must_use]
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            cache: ResultCache::new(),
            pool: WorkerPool::with_default_parallelism(),
            base_seed: 2020,
        }
    }

    /// Overrides the sweep worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Overrides the base seed folded into derived per-job seeds.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The sweep worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Resolves `overrides` against the scenario's declared defaults.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownScenario`] / [`EngineError::UnknownParameter`].
    pub fn resolve(&self, id: &str, overrides: &ParamSet) -> Result<ParamSet, EngineError> {
        let scenario = self.registry.get(id)?;
        let specs = scenario.params();
        let mut resolved = ParamSet::defaults(&specs);
        for (name, value) in overrides.iter() {
            if !specs.iter().any(|s| s.name == name) {
                return Err(EngineError::UnknownParameter {
                    scenario: id.to_owned(),
                    name: name.to_owned(),
                });
            }
            resolved.insert(name, value.clone());
        }
        Ok(resolved)
    }

    /// Runs one scenario, serving repeats from the cache.
    ///
    /// # Errors
    ///
    /// Resolution errors plus whatever the scenario itself returns.
    pub fn run(&self, id: &str, overrides: &ParamSet) -> Result<RunOutcome, EngineError> {
        let params = self.resolve(id, overrides)?;
        self.run_resolved(id, &params)
    }

    fn run_resolved(&self, id: &str, params: &ParamSet) -> Result<RunOutcome, EngineError> {
        let scenario = self.registry.get(id)?;
        let key = ResultCache::key(id, &params.fingerprint());
        let start = Instant::now();
        if let Some(output) = self.cache.get(key) {
            return Ok(RunOutcome {
                output,
                cache_hit: true,
                duration: start.elapsed(),
            });
        }
        let output = Arc::new(scenario.run(params)?);
        self.cache.insert(key, Arc::clone(&output));
        Ok(RunOutcome {
            output,
            cache_hit: false,
            duration: start.elapsed(),
        })
    }

    /// Expands a [`SweepPlan`] and executes every grid point on the
    /// worker pool, cache-aware and with deterministic per-job seeds.
    ///
    /// Individual job failures do not abort the sweep; they surface in
    /// [`SweepJob::result`] and [`SweepOutcome::errors`].
    ///
    /// # Errors
    ///
    /// Plan-level problems only: unknown scenario, unknown or
    /// duplicated parameters, an empty axis.
    pub fn sweep(&self, plan: &SweepPlan) -> Result<SweepOutcome, EngineError> {
        let id = plan.scenario().to_owned();
        let scenario = self.registry.get(&id)?;
        let specs = scenario.params();
        let has_seed = specs.iter().any(|s| s.name == "seed");
        for (name, _) in plan.axes() {
            if !specs.iter().any(|s| s.name == name.as_str()) {
                return Err(EngineError::UnknownParameter {
                    scenario: id.clone(),
                    name: name.clone(),
                });
            }
        }

        let points: Vec<ParamSet> = plan.expand()?;
        let jobs: Vec<(Vec<(String, f64)>, ParamSet)> = points
            .into_iter()
            .map(|overrides| {
                let point: Vec<(String, f64)> = plan
                    .axes()
                    .iter()
                    .map(|(name, _)| (name.clone(), overrides.number(name).expect("axis value")))
                    .collect();
                let mut resolved = self.resolve(&id, &overrides)?;
                // Deterministic per-job seeding: independent of worker
                // scheduling, stable across runs, unique per grid point
                // — unless the caller pinned the seed explicitly.
                if has_seed && !overrides.contains("seed") {
                    let derived =
                        self.base_seed ^ crate::cache::fnv1a(resolved.fingerprint().as_bytes());
                    // 32 bits: exactly representable in the f64 that
                    // `ParamValue::Number` stores and well inside the
                    // integer cap `ParamSet::count` enforces.
                    resolved.insert("seed", f64::from(derived as u32));
                }
                Ok((point, resolved))
            })
            .collect::<Result<_, EngineError>>()?;

        let start = Instant::now();
        // Scenarios with internal parallelism (the Monte-Carlo dynamics)
        // get the cores the sweep itself leaves idle, so a wide sweep
        // does not multiply thread counts (7 jobs × 8 inner workers).
        let inner_workers =
            (WorkerPool::with_default_parallelism().workers() / self.pool.workers().max(1)).max(1);
        let results: Vec<(bool, Result<Arc<ScenarioOutput>, String>)> =
            self.pool.scoped_map(&jobs, |_, (_, params)| {
                SCENARIO_WORKERS.set(Some(inner_workers));
                match self.run_resolved(&id, params) {
                    Ok(outcome) => (outcome.cache_hit, Ok(outcome.output)),
                    Err(e) => (false, Err(e.to_string())),
                }
            });

        let jobs: Vec<SweepJob> = jobs
            .into_iter()
            .zip(results)
            .map(|((point, params), (cache_hit, result))| SweepJob {
                point,
                params,
                result,
                cache_hit,
            })
            .collect();
        let cache_hits = jobs.iter().filter(|j| j.cache_hit).count();
        let errors = jobs.iter().filter(|j| j.result.is_err()).count();
        Ok(SweepOutcome {
            scenario: id,
            jobs,
            cache_hits,
            errors,
            duration: start.elapsed(),
        })
    }

    /// Runs every registered scenario with default parameters and
    /// renders one combined Markdown report.
    ///
    /// Failures are embedded in the report rather than aborting it.
    #[must_use]
    pub fn report(&self, ids: &[&str]) -> String {
        let mut out = String::from("# mramsim report\n\n");
        let ids: Vec<&str> = if ids.is_empty() {
            self.registry.ids().collect()
        } else {
            ids.to_vec()
        };
        for id in ids {
            out.push_str(&format!("## {id}\n\n"));
            match self.run(id, &ParamSet::new()) {
                Ok(outcome) => out.push_str(&outcome.output.to_markdown()),
                Err(e) => out.push_str(&format!("**failed:** {e}\n")),
            }
            out.push('\n');
        }
        let stats = self.cache_stats();
        out.push_str(&format!(
            "---\n{} scenario(s), cache: {} hit(s) / {} miss(es), {} entries\n",
            self.registry.len(),
            stats.hits,
            stats.misses,
            stats.entries
        ));
        out
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenario_and_parameter_are_rejected() {
        let engine = Engine::standard();
        assert!(matches!(
            engine.run("nope", &ParamSet::new()),
            Err(EngineError::UnknownScenario { .. })
        ));
        assert!(matches!(
            engine.run("fig4a", &ParamSet::new().with("bogus", 1.0)),
            Err(EngineError::UnknownParameter { .. })
        ));
        assert!(matches!(
            engine.sweep(&SweepPlan::new("fig4a").axis("bogus", vec![1.0])),
            Err(EngineError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let engine = Engine::standard();
        let first = engine.run("fig4a", &ParamSet::new()).unwrap();
        let second = engine.run("fig4a", &ParamSet::new()).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert!(Arc::ptr_eq(&first.output, &second.output));
        // A different parameter point is a different cache entry.
        let third = engine
            .run("fig4a", &ParamSet::new().with("pitch", 120.0))
            .unwrap();
        assert!(!third.cache_hit);
    }

    #[test]
    fn sweep_executes_the_whole_grid_in_order() {
        let engine = Engine::standard().with_workers(4);
        let plan = SweepPlan::new("fig4b")
            .axis("ecd", vec![20.0, 35.0, 55.0])
            .axis("pitch", vec![90.0, 120.0, 150.0, 200.0]);
        let outcome = engine.sweep(&plan).unwrap();
        assert_eq!(outcome.jobs.len(), 12);
        assert_eq!(outcome.errors, 0);
        assert_eq!(outcome.cache_hits, 0);
        // Deterministic expansion order: first axis slowest.
        assert_eq!(
            outcome.jobs[0].point,
            vec![("ecd".into(), 20.0), ("pitch".into(), 90.0)]
        );
        assert_eq!(
            outcome.jobs[5].point,
            vec![("ecd".into(), 35.0), ("pitch".into(), 120.0)]
        );
        // Ψ decreases along every pitch row.
        for row in outcome.jobs.chunks(4) {
            let psis: Vec<f64> = row
                .iter()
                .map(|j| j.result.as_ref().unwrap().scalar("psi").unwrap())
                .collect();
            assert!(psis.windows(2).all(|w| w[0] > w[1]), "psis = {psis:?}");
        }
        let summary = outcome.summary_table();
        assert_eq!(summary.row_count(), 12);

        // Re-sweeping the same grid is served entirely from the cache.
        let warm = engine.sweep(&plan).unwrap();
        assert_eq!(warm.cache_hits, 12);
    }

    #[test]
    fn sweep_jobs_get_distinct_deterministic_seeds() {
        let engine = Engine::standard();
        let plan = SweepPlan::new("fig2a").axis("ecd", vec![35.0, 55.0]);
        let outcome = engine.sweep(&plan).unwrap();
        // The derived seeds must actually be accepted by the scenario
        // (regression: 48-bit seeds tripped `ParamSet::count`'s cap).
        assert_eq!(outcome.errors, 0, "derived seeds were rejected");
        let seeds: Vec<f64> = outcome
            .jobs
            .iter()
            .map(|j| j.params.number("seed").unwrap())
            .collect();
        assert_ne!(seeds[0], seeds[1], "grid points must not share a seed");
        let again = engine.sweep(&plan).unwrap();
        let seeds_again: Vec<f64> = again
            .jobs
            .iter()
            .map(|j| j.params.number("seed").unwrap())
            .collect();
        assert_eq!(seeds, seeds_again, "seeds must be stable across runs");
        // Pinning the seed disables derivation.
        let pinned = engine
            .sweep(
                &SweepPlan::new("fig2a")
                    .fix("seed", 7.0)
                    .axis("ecd", vec![35.0, 55.0]),
            )
            .unwrap();
        for job in &pinned.jobs {
            assert_eq!(job.params.number("seed").unwrap(), 7.0);
        }
    }

    #[test]
    fn job_failures_are_contained() {
        let engine = Engine::standard();
        // 10 nm pitch is smaller than the 35 nm device: that job fails,
        // the rest of the grid still completes.
        let plan = SweepPlan::new("fig4b").axis("pitch", vec![10.0, 90.0]);
        let outcome = engine.sweep(&plan).unwrap();
        assert_eq!(outcome.errors, 1);
        assert!(outcome.jobs[0].result.is_err());
        assert!(outcome.jobs[1].result.is_ok());
        let summary = outcome.summary_table();
        assert!(summary.to_markdown().contains("error:"));
    }

    #[test]
    fn report_covers_selected_scenarios() {
        let engine = Engine::standard();
        let report = engine.report(&["fig4a", "explore"]);
        assert!(report.contains("## fig4a"));
        assert!(report.contains("## explore"));
        assert!(report.contains("cache:"));
    }
}
