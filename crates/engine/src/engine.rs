//! The [`Engine`]: cache-aware scenario execution and parallel sweeps,
//! with an optional persistent disk tier and checkpointed (resumable)
//! sweep execution.

use crate::cache::{CacheStats, ResultCache};
use crate::store::{DiskStats, DiskStore};
use crate::{EngineError, ParamSet, Registry, ScenarioOutput, SweepPlan};
use mramsim_core::report::Table;
use mramsim_numerics::pool::WorkerPool;
use mramsim_telemetry as telemetry;
use mramsim_telemetry::{Clock, Value};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of the in-memory result cache: large enough that
/// every realistic interactive session is fully served, small enough
/// that an unbounded campaign cannot grow the map without limit (the
/// disk tier, when enabled, still serves evicted points).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

thread_local! {
    /// Inner-parallelism budget the sweep executor hands to scenarios
    /// running on its worker threads (`None` outside a sweep).
    static SCENARIO_WORKERS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The worker-pool width a scenario should use for its *own* internal
/// parallelism (e.g. the Monte-Carlo trajectory ensembles): the
/// machine's full parallelism when the scenario runs directly, and the
/// per-job share when it runs inside a parallel [`Engine::sweep`] —
/// whose workers already occupy the cores.
#[must_use]
pub fn scenario_workers() -> usize {
    SCENARIO_WORKERS
        .get()
        .unwrap_or_else(|| WorkerPool::with_default_parallelism().workers())
}

/// The outcome of one cache-aware [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scenario output (shared with the cache).
    pub output: Arc<ScenarioOutput>,
    /// Whether the result came from a cache tier (memory or disk).
    pub cache_hit: bool,
    /// Whether the serving tier was the on-disk store (implies
    /// `cache_hit`; the entry was promoted into memory on the way).
    pub disk_hit: bool,
    /// Wall-clock time of this call (≈0 for hits).
    pub duration: Duration,
}

/// One job of a sweep: the grid point and its result.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The axis values of this grid point, in axis order.
    pub point: Vec<(String, f64)>,
    /// The fully resolved parameters the job ran with.
    pub params: ParamSet,
    /// The result, or the rendered error.
    pub result: Result<Arc<ScenarioOutput>, String>,
    /// Whether this job was served from a cache tier.
    pub cache_hit: bool,
    /// Whether this job was served from the on-disk store.
    pub disk_hit: bool,
    /// Whether this job was not attempted because the sweep's job
    /// budget ([`SweepOptions::limit`]) was exhausted; its `result`
    /// carries a descriptive error and resuming will run it.
    pub skipped: bool,
}

/// The outcome of one [`Engine::sweep`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The swept scenario id.
    pub scenario: String,
    /// One entry per grid point, in deterministic expansion order.
    pub jobs: Vec<SweepJob>,
    /// Jobs served from a cache tier.
    pub cache_hits: usize,
    /// Jobs served from the on-disk store (subset of `cache_hits`).
    pub disk_hits: usize,
    /// Jobs that failed (excluding budget-skipped jobs).
    pub errors: usize,
    /// Jobs not attempted because the job budget ran out.
    pub skipped: usize,
    /// Wall-clock time of the whole sweep.
    pub duration: Duration,
}

/// A completed (or skipped) sweep job, as seen by
/// [`SweepOptions::on_done`] the moment it finishes — the hook that
/// lets a journal checkpoint progress while the sweep is still
/// running.
#[derive(Debug, Clone, Copy)]
pub struct JobEvent<'a> {
    /// The job's index in deterministic expansion order.
    pub index: usize,
    /// The job's content address (`ResultCache::key`).
    pub key: u64,
    /// The fully resolved parameters.
    pub params: &'a ParamSet,
    /// Whether the job succeeded (skipped jobs are not successes).
    pub ok: bool,
    /// Whether a cache tier served it.
    pub cache_hit: bool,
    /// Whether the disk tier served it.
    pub disk_hit: bool,
    /// Whether the job-budget skip path took it.
    pub skipped: bool,
    /// Wall-clock time of this job, measured on the engine's
    /// [`Clock`] (≈0 for cache hits and skips).
    pub duration: Duration,
}

/// Execution knobs of [`Engine::sweep_with`].
#[derive(Default)]
pub struct SweepOptions<'a> {
    /// Run at most this many jobs that would actually *compute*
    /// (cache-served jobs are free and never count). Jobs beyond the
    /// budget are marked [`SweepJob::skipped`]; a later run — or
    /// `--resume` — picks them up. `None` = unlimited.
    pub limit: Option<usize>,
    /// Called for every finished job, from the worker threads, as soon
    /// as the job completes (not in expansion order).
    pub on_done: Option<&'a (dyn Fn(&JobEvent<'_>) + Sync)>,
    /// Cooperative cancellation: when the flag flips to `true`, jobs
    /// that have not started yet are marked [`SweepJob::skipped`] —
    /// exactly like budget exhaustion, so a journaled run stays
    /// `--resume`-able. In-flight jobs run to completion (and are
    /// journaled); the sweep still returns a full, well-formed
    /// [`SweepOutcome`]. This is how a draining server stops a sweep
    /// without corrupting anything.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for SweepOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("limit", &self.limit)
            .field("on_done", &self.on_done.map(|_| "…"))
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .finish()
    }
}

impl SweepOutcome {
    /// Summarises the grid as one table: axis columns plus every
    /// headline scalar of the scenario, one row per job. When any job
    /// failed, a trailing `status` column carries the error so an
    /// all-failed sweep can never masquerade as a successful one.
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let axis_names: Vec<&str> = self
            .jobs
            .first()
            .map(|j| j.point.iter().map(|(n, _)| n.as_str()).collect())
            .unwrap_or_default();
        // The scalar columns are the first-seen-ordered union over
        // *every* successful job, not just the first one: a scenario
        // may legitimately omit a scalar at some grid points (e.g.
        // switch-traj's mean_ns when nothing switched), and the
        // summary must still carry the column for the points that
        // have it — absent values render as "-".
        let mut scalar_names: Vec<&str> = Vec::new();
        for job in &self.jobs {
            if let Ok(out) = &job.result {
                for (name, _) in &out.scalars {
                    if !scalar_names.contains(&name.as_str()) {
                        scalar_names.push(name);
                    }
                }
            }
        }
        let with_status = self.errors > 0
            || self.skipped > 0
            || (axis_names.is_empty() && scalar_names.is_empty());
        let mut columns: Vec<&str> = axis_names.clone();
        columns.extend(&scalar_names);
        if with_status {
            columns.push("status");
        }
        let mut table = Table::new(
            &format!("sweep: {} ({} points)", self.scenario, self.jobs.len()),
            &columns,
        );
        for job in &self.jobs {
            let mut row: Vec<String> = job.point.iter().map(|(_, v)| format!("{v}")).collect();
            for name in &scalar_names {
                row.push(match &job.result {
                    Ok(out) => out
                        .scalar(name)
                        .map_or_else(|| "-".to_owned(), |v| format!("{v:.6}")),
                    Err(_) => "-".to_owned(),
                });
            }
            if with_status {
                row.push(match &job.result {
                    Ok(_) => "ok".to_owned(),
                    Err(_) if job.skipped => "skipped".to_owned(),
                    Err(e) => format!("error: {e}"),
                });
            }
            table.push_row(&row);
        }
        table
    }
}

/// The unified scenario-execution engine.
///
/// Owns a [`Registry`], a content-addressed [`ResultCache`], and a
/// [`WorkerPool`]; every run — single or swept — flows through the
/// same resolve → cache-lookup → execute → insert path.
///
/// # Examples
///
/// ```
/// use mramsim_engine::{Engine, ParamSet};
///
/// let engine = Engine::standard();
/// let first = engine.run("fig4a", &ParamSet::new())?;
/// let again = engine.run("fig4a", &ParamSet::new())?;
/// assert!(!first.cache_hit && again.cache_hit);
/// # Ok::<(), mramsim_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    registry: Registry,
    cache: ResultCache,
    store: Option<DiskStore>,
    pool: WorkerPool,
    base_seed: u64,
    clock: Clock,
}

impl Engine {
    /// An engine over the standard registry and default parallelism.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(Registry::standard())
    }

    /// An engine over a custom registry, with a memory-only cache
    /// bounded at [`DEFAULT_CACHE_CAPACITY`] entries and no disk tier.
    #[must_use]
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            cache: ResultCache::with_capacity(DEFAULT_CACHE_CAPACITY),
            store: None,
            pool: WorkerPool::with_default_parallelism(),
            base_seed: 2020,
            clock: Clock::system(),
        }
    }

    /// Overrides the clock behind every reported wall-clock duration
    /// ([`RunOutcome::duration`], [`JobEvent::duration`],
    /// [`SweepOutcome::duration`]). Tests install a
    /// [`mramsim_telemetry::TestClock`] to make timing assertions
    /// deterministic; results themselves never depend on the clock.
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Overrides the sweep worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Overrides the in-memory cache capacity (entries). The existing
    /// cache is replaced, so call this before running anything.
    #[must_use]
    pub fn with_cache_capacity(mut self, limit: usize) -> Self {
        self.cache = ResultCache::with_capacity(limit);
        self
    }

    /// Layers the persistent on-disk result store at `dir` under the
    /// in-memory cache (read-through / write-through): lookups fall
    /// back to disk before computing, and every computed result is
    /// persisted, so a second process over the same directory is
    /// served without recomputation.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persistence`] when the directory cannot be
    /// created.
    pub fn with_disk_cache(mut self, dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        self.store = Some(DiskStore::open(dir)?);
        Ok(self)
    }

    /// The on-disk store, when one is attached.
    #[must_use]
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    /// Disk-tier counters, when a store is attached.
    #[must_use]
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.store.as_ref().map(DiskStore::stats)
    }

    /// Overrides the base seed folded into derived per-job seeds.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The sweep worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Resolves `overrides` against the scenario's declared defaults.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownScenario`] / [`EngineError::UnknownParameter`].
    pub fn resolve(&self, id: &str, overrides: &ParamSet) -> Result<ParamSet, EngineError> {
        let scenario = self.registry.get(id)?;
        let specs = scenario.params();
        let mut resolved = ParamSet::defaults(&specs);
        for (name, value) in overrides.iter() {
            if !specs.iter().any(|s| s.name == name) {
                return Err(EngineError::UnknownParameter {
                    scenario: id.to_owned(),
                    name: name.to_owned(),
                });
            }
            resolved.insert(name, value.clone());
        }
        Ok(resolved)
    }

    /// Runs one scenario, serving repeats from the cache.
    ///
    /// # Errors
    ///
    /// Resolution errors plus whatever the scenario itself returns.
    pub fn run(&self, id: &str, overrides: &ParamSet) -> Result<RunOutcome, EngineError> {
        let params = self.resolve(id, overrides)?;
        self.run_resolved(id, &params)
    }

    fn run_resolved(&self, id: &str, params: &ParamSet) -> Result<RunOutcome, EngineError> {
        let outcome = self.run_budgeted(id, params, None)?;
        Ok(outcome.expect("without a budget every job runs"))
    }

    /// [`Engine::run_resolved`] under an optional compute budget:
    /// `Ok(None)` means both cache tiers declined *and* the budget was
    /// already exhausted, so the job was not computed. The slot is
    /// claimed at the actual compute step — a corrupt disk entry that
    /// falls through to recompute still pays for its computation.
    fn run_budgeted(
        &self,
        id: &str,
        params: &ParamSet,
        budget: Option<(&AtomicUsize, usize)>,
    ) -> Result<Option<RunOutcome>, EngineError> {
        let key = ResultCache::key(id, &params.fingerprint());
        let start = self.clock.now_nanos();
        // No span around the memory probe: a hashmap get costs
        // nanoseconds, and tracing it would cost more than it
        // measures. The disk and compute tiers inside `run_cold` —
        // the parts that take real time — each get their own span.
        if let Some(output) = self.cache.get(key) {
            let duration = self.clock.elapsed(start);
            telemetry::observe("engine.warm_lookup_s", duration.as_secs_f64());
            return Ok(Some(RunOutcome {
                output,
                cache_hit: true,
                disk_hit: false,
                duration,
            }));
        }
        self.run_cold(id, params, budget, key, start)
    }

    /// The miss path of [`Engine::run_budgeted`]: disk tier, budget
    /// claim, compute, and store-back. Split out so the sweep loop can
    /// probe the memory tier itself (span-free) and hand off here
    /// without a second, double-counted probe.
    fn run_cold(
        &self,
        id: &str,
        params: &ParamSet,
        budget: Option<(&AtomicUsize, usize)>,
        key: u64,
        start: u64,
    ) -> Result<Option<RunOutcome>, EngineError> {
        let scenario = self.registry.get(id)?;
        if let Some(store) = &self.store {
            let load = telemetry::span_tree("disk.load");
            let loaded = store.load(key);
            load.finish();
            if let Some(output) = loaded {
                // Promote into the memory tier; repeats are then free.
                let output = Arc::new(output);
                self.cache.insert(key, Arc::clone(&output));
                let duration = self.clock.elapsed(start);
                telemetry::observe("engine.disk_load_s", duration.as_secs_f64());
                return Ok(Some(RunOutcome {
                    output,
                    cache_hit: true,
                    disk_hit: true,
                    duration,
                }));
            }
        }
        if let Some((claimed, limit)) = budget {
            if claimed.fetch_add(1, Ordering::Relaxed) >= limit {
                return Ok(None);
            }
        }
        let compute = telemetry::span_tree("compute");
        let output = Arc::new(scenario.run(params)?);
        compute.finish();
        self.cache.insert(key, Arc::clone(&output));
        if let Some(store) = &self.store {
            let save = telemetry::span_tree("disk.store");
            store.save(key, &output);
            save.finish();
        }
        let duration = self.clock.elapsed(start);
        telemetry::observe("engine.compute_s", duration.as_secs_f64());
        Ok(Some(RunOutcome {
            output,
            cache_hit: false,
            disk_hit: false,
            duration,
        }))
    }

    /// Looks a result up by its content address across both cache
    /// tiers — memory first, then the disk store (promoting the entry
    /// into memory on the way) — without ever computing anything.
    /// `None` means the key was never computed under this cache
    /// directory, or has been evicted from a memory-only engine.
    ///
    /// This is the read side of the serve API's `GET /results/<key>`:
    /// submission responses hand out the key
    /// ([`ResultCache::key`] over scenario id + parameter
    /// fingerprint), and any client holding it can fetch the output
    /// from the shared warm cache.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<Arc<ScenarioOutput>> {
        if let Some(output) = self.cache.get(key) {
            return Some(output);
        }
        let store = self.store.as_ref()?;
        let load = telemetry::span_tree("disk.load");
        let loaded = store.load(key);
        load.finish();
        let output = Arc::new(loaded?);
        self.cache.insert(key, Arc::clone(&output));
        Some(output)
    }

    /// Expands a [`SweepPlan`] and executes every grid point on the
    /// worker pool, cache-aware and with deterministic per-job seeds.
    ///
    /// Individual job failures do not abort the sweep; they surface in
    /// [`SweepJob::result`] and [`SweepOutcome::errors`].
    ///
    /// # Errors
    ///
    /// Plan-level problems only: unknown scenario, unknown or
    /// duplicated parameters, an empty axis.
    pub fn sweep(&self, plan: &SweepPlan) -> Result<SweepOutcome, EngineError> {
        self.sweep_with(plan, &SweepOptions::default())
    }

    /// [`Engine::sweep`] with execution knobs: a compute-job budget
    /// (for checkpointed partial runs) and a per-job completion hook
    /// (for streaming journals). See [`SweepOptions`].
    ///
    /// # Errors
    ///
    /// Plan-level problems only, as for [`Engine::sweep`].
    pub fn sweep_with(
        &self,
        plan: &SweepPlan,
        options: &SweepOptions<'_>,
    ) -> Result<SweepOutcome, EngineError> {
        let id = plan.scenario().to_owned();
        let scenario = self.registry.get(&id)?;
        let specs = scenario.params();
        let has_seed = specs.iter().any(|s| s.name == "seed");
        for (name, _) in plan.axes() {
            if !specs.iter().any(|s| s.name == name.as_str()) {
                return Err(EngineError::UnknownParameter {
                    scenario: id.clone(),
                    name: name.clone(),
                });
            }
        }

        let points: Vec<ParamSet> = plan.expand()?;
        let jobs: Vec<(Vec<(String, f64)>, ParamSet)> = points
            .into_iter()
            .map(|overrides| {
                let point: Vec<(String, f64)> = plan
                    .axes()
                    .iter()
                    .map(|(name, _)| (name.clone(), overrides.number(name).expect("axis value")))
                    .collect();
                let mut resolved = self.resolve(&id, &overrides)?;
                // Deterministic per-job seeding: independent of worker
                // scheduling, stable across runs, unique per grid point
                // — unless the caller pinned the seed explicitly.
                if has_seed && !overrides.contains("seed") {
                    let derived =
                        self.base_seed ^ crate::cache::fnv1a(resolved.fingerprint().as_bytes());
                    // 32 bits: exactly representable in the f64 that
                    // `ParamValue::Number` stores and well inside the
                    // integer cap `ParamSet::count` enforces.
                    resolved.insert("seed", f64::from(derived as u32));
                }
                Ok((point, resolved))
            })
            .collect::<Result<_, EngineError>>()?;

        let start = self.clock.now_nanos();
        // The sweep root span: every job span (and everything under
        // it, down to kernel builds and journal flushes on worker
        // threads) nests here via the pool's context propagation.
        let mut sweep_span = None;
        if telemetry::enabled() {
            telemetry::event(
                "sweep.start",
                &[
                    ("scenario", Value::Text(id.clone())),
                    ("jobs", Value::U64(jobs.len() as u64)),
                    ("workers", Value::U64(self.pool.workers() as u64)),
                ],
            );
            telemetry::set_lane_label("sweep");
            sweep_span = Some(telemetry::span_tree_with(
                "sweep",
                &[("scenario", Value::Text(id.clone()))],
            ));
        }
        // Scenarios with internal parallelism (the Monte-Carlo dynamics)
        // get the cores the sweep itself leaves idle, so a wide sweep
        // does not multiply thread counts (7 jobs × 8 inner workers).
        let inner_workers =
            (WorkerPool::with_default_parallelism().workers() / self.pool.workers().max(1)).max(1);
        // Every job that reaches the compute step claims one budget
        // slot (inside `run_cold`, after both cache tiers have
        // declined — so cache-served jobs are free and a corrupt disk
        // entry cannot sneak an unbudgeted computation through).
        let computed = AtomicUsize::new(0);
        let budget = options.limit.map(|limit| (&computed, limit));
        struct JobResult {
            cache_hit: bool,
            disk_hit: bool,
            skipped: bool,
            result: Result<Arc<ScenarioOutput>, String>,
        }
        let busy_ns = AtomicU64::new(0);
        let results: Vec<JobResult> = self.pool.scoped_map(&jobs, |index, (_, params)| {
            SCENARIO_WORKERS.set(Some(inner_workers));
            let key = ResultCache::key(&id, &params.fingerprint());
            let job_start = self.clock.now_nanos();
            // Memory-tier probe before any span opens: a warm hit is a
            // hashmap get costing nanoseconds, and bracketing it in
            // span events would cost more than the work it measures.
            // Jobs that miss — the ones with real structure underneath
            // (disk loads, compute, kernels, journal flushes) — get a
            // span per grid point, parented under the sweep root
            // through the pool's captured context.
            // Cooperative cancellation (a draining server): jobs that
            // have not started when the flag flips are skipped — like
            // budget exhaustion — so the journal stays resumable.
            let cancelled = options.cancel.is_some_and(|c| c.load(Ordering::Relaxed));
            let warm = if cancelled { None } else { self.cache.get(key) };
            let _job_span = if warm.is_none() && !cancelled {
                Some(telemetry::span_tree_with(
                    "job",
                    &[("index", Value::U64(index as u64))],
                ))
            } else {
                None
            };
            let (cache_hit, disk_hit, skipped, result) = if cancelled {
                (
                    false,
                    false,
                    true,
                    Err("not run: sweep cancelled (resume to continue)".to_owned()),
                )
            } else if let Some(output) = warm {
                telemetry::observe(
                    "engine.warm_lookup_s",
                    self.clock.elapsed(job_start).as_secs_f64(),
                );
                (true, false, false, Ok(output))
            } else {
                match self.run_cold(&id, params, budget, key, job_start) {
                    Ok(Some(outcome)) => (
                        outcome.cache_hit,
                        outcome.disk_hit,
                        false,
                        Ok(outcome.output),
                    ),
                    Ok(None) => (
                        false,
                        false,
                        true,
                        Err("not run: sweep job budget exhausted (resume to continue)".to_owned()),
                    ),
                    Err(e) => (false, false, false, Err(e.to_string())),
                }
            };
            let duration = self.clock.elapsed(job_start);
            if !skipped {
                busy_ns.fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
            }
            if telemetry::enabled() {
                let source = if skipped {
                    "skipped"
                } else if result.is_err() {
                    "error"
                } else if disk_hit {
                    "disk"
                } else if cache_hit {
                    "warm"
                } else {
                    "computed"
                };
                telemetry::event(
                    "job.done",
                    &[
                        ("index", Value::U64(index as u64)),
                        ("source", Value::Text(source.to_owned())),
                        ("duration_ns", Value::U64(duration.as_nanos() as u64)),
                        ("ok", Value::Bool(result.is_ok())),
                        ("scenario", Value::Text(id.clone())),
                    ],
                );
            }
            let event = JobEvent {
                index,
                key,
                params,
                ok: result.is_ok(),
                cache_hit,
                disk_hit,
                skipped,
                duration,
            };
            if let Some(on_done) = options.on_done {
                on_done(&event);
            }
            JobResult {
                cache_hit,
                disk_hit,
                skipped,
                result,
            }
        });

        let jobs: Vec<SweepJob> = jobs
            .into_iter()
            .zip(results)
            .map(|((point, params), r)| SweepJob {
                point,
                params,
                result: r.result,
                cache_hit: r.cache_hit,
                disk_hit: r.disk_hit,
                skipped: r.skipped,
            })
            .collect();
        let cache_hits = jobs.iter().filter(|j| j.cache_hit).count();
        let disk_hits = jobs.iter().filter(|j| j.disk_hit).count();
        let skipped = jobs.iter().filter(|j| j.skipped).count();
        let errors = jobs
            .iter()
            .filter(|j| j.result.is_err() && !j.skipped)
            .count();
        let duration = self.clock.elapsed(start);
        telemetry::counter_add("engine.busy_ns", busy_ns.load(Ordering::Relaxed));
        telemetry::observe("engine.sweep_s", duration.as_secs_f64());
        if telemetry::enabled() {
            telemetry::event(
                "sweep.end",
                &[
                    ("duration_ns", Value::U64(duration.as_nanos() as u64)),
                    ("cache_hits", Value::U64(cache_hits as u64)),
                    ("disk_hits", Value::U64(disk_hits as u64)),
                    ("errors", Value::U64(errors as u64)),
                    ("skipped", Value::U64(skipped as u64)),
                ],
            );
        }
        // Close the root span last so the trace covers the whole run,
        // end events included.
        drop(sweep_span);
        Ok(SweepOutcome {
            scenario: id,
            jobs,
            cache_hits,
            disk_hits,
            errors,
            skipped,
            duration,
        })
    }

    /// Runs every registered scenario with default parameters and
    /// renders one combined Markdown report.
    ///
    /// Failures are embedded in the report rather than aborting it.
    #[must_use]
    pub fn report(&self, ids: &[&str]) -> String {
        let mut out = String::from("# mramsim report\n\n");
        let ids: Vec<&str> = if ids.is_empty() {
            self.registry.ids().collect()
        } else {
            ids.to_vec()
        };
        for id in ids {
            out.push_str(&format!("## {id}\n\n"));
            match self.run(id, &ParamSet::new()) {
                Ok(outcome) => out.push_str(&outcome.output.to_markdown()),
                Err(e) => out.push_str(&format!("**failed:** {e}\n")),
            }
            out.push('\n');
        }
        let stats = self.cache_stats();
        out.push_str(&format!(
            "---\n{} scenario(s), cache: {} hit(s) / {} miss(es), {} entries\n",
            self.registry.len(),
            stats.hits,
            stats.misses,
            stats.entries
        ));
        out
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_shareable_across_threads() {
        // The serve module hands one `Arc<Engine>` to every request
        // handler thread; this pins the auto-traits that makes legal.
        fn assert_shareable<T: Send + Sync + 'static>() {}
        assert_shareable::<Engine>();
        assert_shareable::<std::sync::Arc<Engine>>();
    }

    #[test]
    fn lookup_serves_both_tiers_without_computing() {
        let dir = crate::store::TempDir::new("lookup");
        let engine = Engine::standard().with_disk_cache(&dir.0).unwrap();
        let params = engine.resolve("fig4a", &ParamSet::new()).unwrap();
        let key = ResultCache::key("fig4a", &params.fingerprint());
        assert!(engine.lookup(key).is_none(), "nothing computed yet");
        let run = engine.run("fig4a", &ParamSet::new()).unwrap();
        let warm = engine.lookup(key).expect("memory tier");
        assert!(Arc::ptr_eq(&run.output, &warm));
        // A second engine over the same directory serves from disk and
        // promotes into its own memory tier.
        let cold = Engine::standard().with_disk_cache(&dir.0).unwrap();
        assert!(cold.lookup(key).is_some(), "disk tier");
        assert_eq!(cold.cache_stats().entries, 1, "promoted into memory");
    }

    #[test]
    fn cancelled_sweeps_skip_cleanly() {
        use std::sync::atomic::AtomicBool;
        let engine = Engine::standard().with_workers(1);
        let plan = SweepPlan::new("fig4b").axis("pitch", vec![90.0, 120.0, 150.0, 200.0]);
        // Flip the flag after the second job completes: the remaining
        // jobs must come back skipped, not half-run.
        let cancel = AtomicBool::new(false);
        let seen = AtomicUsize::new(0);
        let outcome = engine
            .sweep_with(
                &plan,
                &SweepOptions {
                    cancel: Some(&cancel),
                    on_done: Some(&|event: &JobEvent<'_>| {
                        if seen.fetch_add(1, Ordering::Relaxed) + 1 == 2 {
                            cancel.store(true, Ordering::Relaxed);
                        }
                        assert_eq!(event.ok, !event.skipped);
                    }),
                    ..SweepOptions::default()
                },
            )
            .unwrap();
        assert_eq!(outcome.jobs.len(), 4, "outcome still covers the grid");
        assert_eq!(outcome.skipped, 2);
        assert_eq!(outcome.errors, 0, "skips are not errors");
        for job in &outcome.jobs[2..] {
            assert!(job.skipped);
            let message = job.result.as_ref().unwrap_err();
            assert!(message.contains("cancelled"), "{message}");
        }
        // A fresh sweep without the flag completes the rest.
        let finished = engine.sweep(&plan).unwrap();
        assert_eq!(finished.skipped, 0);
        assert_eq!(finished.cache_hits, 2, "completed jobs were cached");
    }

    #[test]
    fn unknown_scenario_and_parameter_are_rejected() {
        let engine = Engine::standard();
        assert!(matches!(
            engine.run("nope", &ParamSet::new()),
            Err(EngineError::UnknownScenario { .. })
        ));
        assert!(matches!(
            engine.run("fig4a", &ParamSet::new().with("bogus", 1.0)),
            Err(EngineError::UnknownParameter { .. })
        ));
        assert!(matches!(
            engine.sweep(&SweepPlan::new("fig4a").axis("bogus", vec![1.0])),
            Err(EngineError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let engine = Engine::standard();
        let first = engine.run("fig4a", &ParamSet::new()).unwrap();
        let second = engine.run("fig4a", &ParamSet::new()).unwrap();
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert!(Arc::ptr_eq(&first.output, &second.output));
        // A different parameter point is a different cache entry.
        let third = engine
            .run("fig4a", &ParamSet::new().with("pitch", 120.0))
            .unwrap();
        assert!(!third.cache_hit);
    }

    #[test]
    fn sweep_executes_the_whole_grid_in_order() {
        let engine = Engine::standard().with_workers(4);
        let plan = SweepPlan::new("fig4b")
            .axis("ecd", vec![20.0, 35.0, 55.0])
            .axis("pitch", vec![90.0, 120.0, 150.0, 200.0]);
        let outcome = engine.sweep(&plan).unwrap();
        assert_eq!(outcome.jobs.len(), 12);
        assert_eq!(outcome.errors, 0);
        assert_eq!(outcome.cache_hits, 0);
        // Deterministic expansion order: first axis slowest.
        assert_eq!(
            outcome.jobs[0].point,
            vec![("ecd".into(), 20.0), ("pitch".into(), 90.0)]
        );
        assert_eq!(
            outcome.jobs[5].point,
            vec![("ecd".into(), 35.0), ("pitch".into(), 120.0)]
        );
        // Ψ decreases along every pitch row.
        for row in outcome.jobs.chunks(4) {
            let psis: Vec<f64> = row
                .iter()
                .map(|j| j.result.as_ref().unwrap().scalar("psi").unwrap())
                .collect();
            assert!(psis.windows(2).all(|w| w[0] > w[1]), "psis = {psis:?}");
        }
        let summary = outcome.summary_table();
        assert_eq!(summary.row_count(), 12);

        // Re-sweeping the same grid is served entirely from the cache.
        let warm = engine.sweep(&plan).unwrap();
        assert_eq!(warm.cache_hits, 12);
    }

    #[test]
    fn sweep_jobs_get_distinct_deterministic_seeds() {
        let engine = Engine::standard();
        let plan = SweepPlan::new("fig2a").axis("ecd", vec![35.0, 55.0]);
        let outcome = engine.sweep(&plan).unwrap();
        // The derived seeds must actually be accepted by the scenario
        // (regression: 48-bit seeds tripped `ParamSet::count`'s cap).
        assert_eq!(outcome.errors, 0, "derived seeds were rejected");
        let seeds: Vec<f64> = outcome
            .jobs
            .iter()
            .map(|j| j.params.number("seed").unwrap())
            .collect();
        assert_ne!(seeds[0], seeds[1], "grid points must not share a seed");
        let again = engine.sweep(&plan).unwrap();
        let seeds_again: Vec<f64> = again
            .jobs
            .iter()
            .map(|j| j.params.number("seed").unwrap())
            .collect();
        assert_eq!(seeds, seeds_again, "seeds must be stable across runs");
        // Pinning the seed disables derivation.
        let pinned = engine
            .sweep(
                &SweepPlan::new("fig2a")
                    .fix("seed", 7.0)
                    .axis("ecd", vec![35.0, 55.0]),
            )
            .unwrap();
        for job in &pinned.jobs {
            assert_eq!(job.params.number("seed").unwrap(), 7.0);
        }
    }

    #[test]
    fn sweep_summary_carries_scalars_missing_from_early_jobs() {
        // switch-traj omits mean/median/std when nothing switched; a
        // sub-critical deterministic first point must not erase those
        // columns for the whole sweep (regression: columns came from
        // the first successful job only).
        let engine = Engine::standard();
        let plan = SweepPlan::new("switch-traj")
            .fix("trajectories", 8.0)
            .fix("thermal", 0.0)
            .fix("span_ns", 4.0)
            .axis("overdrive", vec![0.2, 3.0]);
        let outcome = engine.sweep(&plan).unwrap();
        assert_eq!(outcome.errors, 0);
        let first = outcome.jobs[0].result.as_ref().unwrap();
        assert_eq!(
            first.scalar("switched"),
            Some(0.0),
            "sub-critical drive without thermal noise must not switch"
        );
        assert_eq!(first.scalar("mean_ns"), None);
        let csv = outcome.summary_table().to_csv();
        let header = csv.lines().next().unwrap();
        assert!(
            header.contains("mean_ns") && header.contains("std_ns"),
            "columns present on any job must survive: {header}"
        );
        // The none-switched row renders "-" for the absent stats.
        let first_row = csv.lines().nth(1).unwrap();
        assert!(first_row.contains(",-"), "{first_row}");
    }

    #[test]
    fn job_failures_are_contained() {
        let engine = Engine::standard();
        // 10 nm pitch is smaller than the 35 nm device: that job fails,
        // the rest of the grid still completes.
        let plan = SweepPlan::new("fig4b").axis("pitch", vec![10.0, 90.0]);
        let outcome = engine.sweep(&plan).unwrap();
        assert_eq!(outcome.errors, 1);
        assert!(outcome.jobs[0].result.is_err());
        assert!(outcome.jobs[1].result.is_ok());
        let summary = outcome.summary_table();
        assert!(summary.to_markdown().contains("error:"));
    }

    #[test]
    fn report_covers_selected_scenarios() {
        let engine = Engine::standard();
        let report = engine.report(&["fig4a", "explore"]);
        assert!(report.contains("## fig4a"));
        assert!(report.contains("## explore"));
        assert!(report.contains("cache:"));
    }
}
