//! `mramsim serve`: a long-lived concurrent simulation service over
//! one shared [`Engine`].
//!
//! The server speaks plain HTTP/1.1 + JSON over `std::net` — the
//! workspace is dependency-free, so there is no async runtime; instead
//! the blocking accept loop hands each connection to its own thread,
//! and job execution happens on dedicated submission threads that all
//! share the *same* `Arc<Engine>` (the engine is interior-mutable and
//! `Sync`, so every client shares one warm cache, one disk store, and
//! one registry).
//!
//! Endpoints:
//!
//! * `POST /runs` — submit a single-point job:
//!   `{"scenario":"fig4a","params":{"pitch":120}}`;
//! * `POST /sweeps` — submit a grid job:
//!   `{"scenario":"fig4b","params":{"ecd":35},"axes":{"pitch":[90,120]},
//!   "limit":4}` (axes are applied in name order — the name-sorted
//!   JSON object *is* the canonical plan, so the same request body
//!   always maps to the same run id);
//! * `GET /runs/<job>` — stream per-job progress as chunked JSONL: one
//!   line per finished grid point (fed by [`SweepOptions::on_done`]),
//!   then one final summary line carrying the sweep CSV;
//! * `GET /results/<key>` — fetch a cached output by content address
//!   (the 16-hex-digit key streamed in progress lines), served from
//!   the shared memory tier or the disk store, never recomputed;
//! * `GET /healthz` — liveness + admission state;
//! * `GET /metrics` — the full telemetry snapshot (engine counters,
//!   latency histograms, serve gauges) as JSON;
//! * `POST /shutdown` — graceful drain: new submissions get 503,
//!   running sweeps are cooperatively cancelled (their journals stay
//!   `--resume`-able), and the server exits once the last job flushed.
//!
//! Admission control: at most [`ServeConfig::max_inflight`] jobs run
//! at once; submissions beyond that are rejected with 429 and a
//! `serve.rejected` counter, so a traffic spike degrades into retries
//! instead of an unbounded thread pile-up. Two submissions of the
//! *same* plan do not double-compute: the second joins the in-flight
//! run (same job id, `"joined":true`) — and if another *process* owns
//! the run, the journal's run lock turns that into a clean 409.

use crate::journal::SweepJournal;
use crate::{Engine, EngineError, JobEvent, ParamValue, ScenarioOutput, SweepOptions, SweepPlan};
use mramsim_numerics::hash::{key_hex, parse_key_hex};
use mramsim_telemetry as telemetry;
use mramsim_telemetry::{Json, MetricsRecorder, Recorder};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Knobs of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum concurrently running jobs; submissions beyond this are
    /// rejected with HTTP 429 until a slot frees up.
    pub max_inflight: usize,
    /// Where sweep journals live (the engine's cache directory). With
    /// a directory *and* a disk-tier engine, every server sweep is
    /// journaled and stays `mramsim sweep --resume`-able after a
    /// drain; without one, jobs run unjournaled.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            max_inflight: 4,
            cache_dir: None,
        }
    }
}

/// One submitted job's shared progress state.
#[derive(Debug)]
struct Job {
    /// The journal run id of the job's plan.
    run_id: String,
    /// Rendered JSONL progress lines, appended as grid points finish;
    /// the final line is the summary (status `done` or `failed`).
    state: Mutex<JobProgress>,
    /// Signalled on every appended line, so progress streams wake
    /// without polling.
    wake: Condvar,
}

#[derive(Debug, Default)]
struct JobProgress {
    lines: Vec<String>,
    finished: bool,
}

impl Job {
    fn push_line(&self, line: String, finished: bool) {
        let mut progress = lock(&self.state);
        progress.lines.push(line);
        progress.finished |= finished;
        drop(progress);
        self.wake.notify_all();
    }
}

/// Locks with poison recovery: a panicking handler thread must never
/// wedge every later request (the same policy as the engine's cache
/// and journal locks).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything the request handlers share.
#[derive(Debug)]
struct ServerState {
    engine: Arc<Engine>,
    /// The bound address; the drain waiter self-connects to it to wake
    /// the blocking accept loop.
    addr: SocketAddr,
    cache_dir: Option<PathBuf>,
    max_inflight: usize,
    /// Jobs currently executing (admission control).
    inflight: AtomicUsize,
    /// Set by `POST /shutdown`: reject new submissions, keep serving
    /// reads while running jobs drain.
    draining: AtomicBool,
    /// Set once the drain completed: the accept loop exits.
    stop: AtomicBool,
    /// Cooperative cancellation flag handed to every sweep
    /// ([`SweepOptions::cancel`]); flipped by the drain.
    cancel: AtomicBool,
    next_job: AtomicUsize,
    /// Every job ever submitted, by job id (`j1`, `j2`, …).
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    /// Run id → job id for *live* jobs only: the in-process
    /// join-in-flight map (the journal run lock covers other
    /// processes).
    live_runs: Mutex<BTreeMap<String, String>>,
    /// The server's telemetry sink, installed process-globally for the
    /// server's lifetime; `GET /metrics` snapshots it.
    metrics: Arc<MetricsRecorder>,
}

/// The `mramsim serve` HTTP server.
///
/// [`Server::bind`] binds the listener (so the port is known before
/// any request), [`Server::run`] blocks serving requests until a
/// graceful `POST /shutdown` drain completes.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and prepares the shared state.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persistence`] when the address cannot be bound.
    pub fn bind(engine: Arc<Engine>, config: &ServeConfig) -> Result<Self, EngineError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| EngineError::Persistence {
            path: config.addr.clone(),
            message: format!("cannot bind serve address: {e}"),
        })?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| EngineError::Persistence {
                path: config.addr.clone(),
                message: format!("cannot read bound address: {e}"),
            })?;
        Ok(Self {
            listener,
            local_addr,
            state: Arc::new(ServerState {
                engine,
                addr: local_addr,
                cache_dir: config.cache_dir.clone(),
                max_inflight: config.max_inflight.max(1),
                inflight: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                cancel: AtomicBool::new(false),
                next_job: AtomicUsize::new(1),
                jobs: Mutex::new(BTreeMap::new()),
                live_runs: Mutex::new(BTreeMap::new()),
                metrics: Arc::new(MetricsRecorder::new()),
            }),
        })
    }

    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves requests until a `POST /shutdown` drain completes.
    ///
    /// Installs the server's metrics recorder process-globally for the
    /// duration (restored on return), so engine telemetry from every
    /// job aggregates into the `GET /metrics` snapshot.
    pub fn run(&self) {
        let recorder: Arc<dyn Recorder> = self.state.metrics.clone();
        let _telemetry = telemetry::install(recorder);
        for connection in self.listener.incoming() {
            if self.state.stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = connection else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
    }
}

/// Reads one request, routes it, writes one response. Any I/O failure
/// just drops the connection — the client went away.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // A stuck client must not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);
    let Some((method, path, body)) = read_request(&mut reader) else {
        return;
    };
    telemetry::counter_add("serve.requests", 1);
    let mut stream = reader.into_inner();
    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond_json(&mut stream, 200, &healthz(state)),
        ("GET", "/metrics") => respond_json(&mut stream, 200, &metrics(state)),
        ("POST", "/runs") => submit(state, &mut stream, &body, false),
        ("POST", "/sweeps") => submit(state, &mut stream, &body, true),
        ("POST", "/shutdown") => shutdown(state, &mut stream),
        ("GET", _) if path.strip_prefix("/runs/").is_some() => {
            let id = path.strip_prefix("/runs/").unwrap_or_default();
            stream_progress(state, &mut stream, id);
        }
        ("GET", _) if path.strip_prefix("/results/").is_some() => {
            let key = path.strip_prefix("/results/").unwrap_or_default();
            result_by_key(state, &mut stream, key);
        }
        _ => respond_error(&mut stream, 404, &format!("no route for {method} {path}")),
    }
}

/// Parses the request line, headers, and a `Content-Length` body.
/// `None` on malformed input or a body over 1 MiB (nothing the API
/// accepts is remotely that large).
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<(String, String, String)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(value) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = value.parse().ok()?;
        }
    }
    if content_length > 1 << 20 {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((method, path, String::from_utf8(body).ok()?))
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond_json(stream: &mut TcpStream, code: u16, body: &Json) {
    let text = body.render();
    let _ = write!(
        stream,
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        status_text(code),
        text.len(),
    );
    let _ = stream.flush();
}

fn respond_error(stream: &mut TcpStream, code: u16, message: &str) {
    let mut obj = BTreeMap::new();
    obj.insert("error".to_owned(), Json::Str(message.to_owned()));
    respond_json(stream, code, &Json::Obj(obj));
}

fn healthz(state: &ServerState) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("status".to_owned(), Json::Str("ok".to_owned()));
    obj.insert(
        "inflight".to_owned(),
        Json::Num(state.inflight.load(Ordering::Relaxed) as f64),
    );
    obj.insert(
        "max_inflight".to_owned(),
        Json::Num(state.max_inflight as f64),
    );
    obj.insert(
        "draining".to_owned(),
        Json::Bool(state.draining.load(Ordering::Relaxed)),
    );
    obj.insert("jobs".to_owned(), Json::Num(lock(&state.jobs).len() as f64));
    Json::Obj(obj)
}

fn metrics(state: &ServerState) -> Json {
    // Gauge the admission state into the snapshot on the way out, so
    // one endpoint carries both the engine counters and the serve
    // queue depth.
    telemetry::gauge_set(
        "serve.queue_depth",
        state.inflight.load(Ordering::Relaxed) as f64,
    );
    telemetry::gauge_set(
        "serve.draining",
        f64::from(state.draining.load(Ordering::Relaxed)),
    );
    state.metrics.snapshot().to_json()
}

/// Converts a JSON parameter value into a [`ParamValue`]: numbers,
/// strings, and arrays of numbers.
fn param_from_json(name: &str, json: &Json) -> Result<ParamValue, String> {
    match json {
        Json::Num(v) => Ok(ParamValue::Number(*v)),
        Json::Str(s) => Ok(ParamValue::Text(s.clone())),
        Json::Arr(items) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("parameter `{name}`: list items must be numbers"))
            })
            .collect::<Result<Vec<f64>, _>>()
            .map(ParamValue::List),
        _ => Err(format!(
            "parameter `{name}` must be a number, string, or array of numbers"
        )),
    }
}

/// Builds the sweep plan a submission body describes.
///
/// `params` become fixed overrides; `axes` (an object of name →
/// number-array) become grid axes in name order — the name-sorted JSON
/// object is the canonical form, so identical bodies always map to the
/// same plan hash and run id.
fn plan_from_json(body: &Json, want_axes: bool) -> Result<(SweepPlan, Option<usize>), String> {
    let scenario = body
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("body needs a `scenario` string")?;
    let mut plan = SweepPlan::new(scenario);
    if let Some(params) = body.get("params") {
        let params = params
            .as_obj()
            .ok_or("`params` must be an object of name → value")?;
        for (name, value) in params {
            plan = plan.fix(name, param_from_json(name, value)?);
        }
    }
    match body.get("axes") {
        Some(axes) if want_axes => {
            let axes = axes
                .as_obj()
                .ok_or("`axes` must be an object of name → array of numbers")?;
            for (name, values) in axes {
                let values: Vec<f64> = values
                    .as_arr()
                    .and_then(|items| items.iter().map(Json::as_f64).collect())
                    .ok_or_else(|| format!("axis `{name}` must be an array of numbers"))?;
                plan = plan.axis(name, values);
            }
        }
        Some(_) => return Err("`/runs` takes a single point; submit axes to `/sweeps`".into()),
        None if want_axes => return Err("`/sweeps` needs at least one axis".into()),
        None => {}
    }
    let limit = match body.get("limit") {
        Some(v) => Some(v.as_u64().ok_or("`limit` must be a non-negative integer")? as usize),
        None => None,
    };
    Ok((plan, limit))
}

/// Validates a plan against the scenario's declared parameter specs —
/// the same up-front check the CLI runs, so a typo'd submission fails
/// with 400 instead of leaving a failed job behind.
fn validate_plan(engine: &Engine, plan: &SweepPlan) -> Result<(), String> {
    let specs = engine
        .registry()
        .get(plan.scenario())
        .map_err(|e| e.to_string())?
        .params();
    for name in plan
        .axes()
        .iter()
        .map(|(name, _)| name.as_str())
        .chain(plan.fixed().iter().map(|(name, _)| name))
    {
        if !specs.iter().any(|s| s.name == name) {
            return Err(format!(
                "scenario `{}` has no parameter `{name}`",
                plan.scenario()
            ));
        }
    }
    plan.expand().map_err(|e| e.to_string())?;
    Ok(())
}

/// `POST /runs` / `POST /sweeps`: validate, dedupe against in-flight
/// runs, admit, and launch.
fn submit(state: &Arc<ServerState>, stream: &mut TcpStream, body: &str, want_axes: bool) {
    if state.draining.load(Ordering::Relaxed) {
        return respond_error(stream, 503, "server is draining; resubmit after restart");
    }
    let Some(body) = Json::parse(body) else {
        return respond_error(stream, 400, "body is not valid JSON");
    };
    let (plan, limit) = match plan_from_json(&body, want_axes) {
        Ok(parsed) => parsed,
        Err(message) => return respond_error(stream, 400, &message),
    };
    if let Err(message) = validate_plan(&state.engine, &plan) {
        return respond_error(stream, 400, &message);
    }
    let run_id = SweepJournal::run_id(&plan);

    // Dedupe + admission under one lock, so two racing submissions of
    // the same plan cannot both claim a slot.
    let (job_id, joined) = {
        let mut live = lock(&state.live_runs);
        if let Some(job_id) = live.get(&run_id) {
            telemetry::counter_add("serve.joined", 1);
            (job_id.clone(), true)
        } else {
            let running = state.inflight.load(Ordering::Relaxed);
            if running >= state.max_inflight {
                telemetry::counter_add("serve.rejected", 1);
                drop(live);
                return respond_error(
                    stream,
                    429,
                    &format!(
                        "admission limit reached ({running}/{} jobs in flight); retry shortly",
                        state.max_inflight
                    ),
                );
            }
            state.inflight.fetch_add(1, Ordering::Relaxed);
            let job_id = format!("j{}", state.next_job.fetch_add(1, Ordering::Relaxed));
            let job = Arc::new(Job {
                run_id: run_id.clone(),
                state: Mutex::new(JobProgress::default()),
                wake: Condvar::new(),
            });
            lock(&state.jobs).insert(job_id.clone(), Arc::clone(&job));
            live.insert(run_id.clone(), job_id.clone());
            telemetry::counter_add("serve.submitted", 1);
            let state = Arc::clone(state);
            let launched = job_id.clone();
            std::thread::spawn(move || run_job(&state, &job, &launched, &plan, limit));
            (job_id, false)
        }
    };

    let mut obj = BTreeMap::new();
    obj.insert("job".to_owned(), Json::Str(job_id.clone()));
    obj.insert("run_id".to_owned(), Json::Str(run_id));
    obj.insert("joined".to_owned(), Json::Bool(joined));
    obj.insert("progress".to_owned(), Json::Str(format!("/runs/{job_id}")));
    respond_json(stream, if joined { 200 } else { 202 }, &Json::Obj(obj));
}

/// Renders one finished grid point as a progress line.
fn event_line(event: &JobEvent<'_>) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("index".to_owned(), Json::Num(event.index as f64));
    obj.insert("key".to_owned(), Json::Str(key_hex(event.key)));
    obj.insert("ok".to_owned(), Json::Bool(event.ok));
    obj.insert("cache_hit".to_owned(), Json::Bool(event.cache_hit));
    obj.insert("disk_hit".to_owned(), Json::Bool(event.disk_hit));
    obj.insert("skipped".to_owned(), Json::Bool(event.skipped));
    obj.insert(
        "duration_s".to_owned(),
        Json::Num(event.duration.as_secs_f64()),
    );
    Json::Obj(obj).render()
}

/// Executes one submitted job on its own thread: journal, sweep,
/// final summary line, cleanup.
fn run_job(
    state: &Arc<ServerState>,
    job: &Arc<Job>,
    job_id: &str,
    plan: &SweepPlan,
    limit: Option<usize>,
) {
    telemetry::set_lane_label("serve-job");
    // Journal the run when a disk tier exists to resume from. The run
    // lock also fences other *processes* off this run id; a live
    // holder fails the job cleanly instead of interleaving journals.
    let journal = match (&state.cache_dir, state.engine.store().is_some()) {
        (Some(dir), true) => {
            match SweepJournal::create(SweepJournal::path_for(dir, &job.run_id), plan) {
                Ok(journal) => Some(journal),
                Err(e) => {
                    let mut obj = BTreeMap::new();
                    obj.insert("status".to_owned(), Json::Str("failed".to_owned()));
                    obj.insert("error".to_owned(), Json::Str(e.to_string()));
                    job.push_line(Json::Obj(obj).render(), true);
                    finish_job(state, job_id, &job.run_id);
                    return;
                }
            }
        }
        _ => None,
    };
    let on_done = |event: &JobEvent<'_>| {
        if event.ok {
            if let Some(journal) = &journal {
                journal.record(event.index, event.key);
            }
        }
        job.push_line(event_line(event), false);
    };
    let options = SweepOptions {
        limit,
        on_done: Some(&on_done),
        cancel: Some(&state.cancel),
    };
    let mut obj = BTreeMap::new();
    match state.engine.sweep_with(plan, &options) {
        Ok(outcome) => {
            obj.insert("status".to_owned(), Json::Str("done".to_owned()));
            obj.insert("scenario".to_owned(), Json::Str(outcome.scenario.clone()));
            obj.insert("jobs".to_owned(), Json::Num(outcome.jobs.len() as f64));
            obj.insert(
                "cache_hits".to_owned(),
                Json::Num(outcome.cache_hits as f64),
            );
            obj.insert("disk_hits".to_owned(), Json::Num(outcome.disk_hits as f64));
            obj.insert("errors".to_owned(), Json::Num(outcome.errors as f64));
            obj.insert("skipped".to_owned(), Json::Num(outcome.skipped as f64));
            obj.insert(
                "duration_s".to_owned(),
                Json::Num(outcome.duration.as_secs_f64()),
            );
            obj.insert(
                "csv".to_owned(),
                Json::Str(outcome.summary_table().to_csv()),
            );
        }
        Err(e) => {
            obj.insert("status".to_owned(), Json::Str("failed".to_owned()));
            obj.insert("error".to_owned(), Json::Str(e.to_string()));
        }
    }
    // Surface a recovered journal poisoning exactly once, as designed:
    // the sweep finished, the journal kept flushing, but the panic
    // still deserves a line in the server log.
    if let Some(poisoned) = journal.as_ref().and_then(SweepJournal::poison_error) {
        telemetry::counter_add("serve.poison_recoveries", 1);
        eprintln!("warning: {poisoned}");
    }
    job.push_line(Json::Obj(obj).render(), true);
    // Release the run lock *before* leaving the live-run map: a
    // resubmission landing between the two would otherwise find the
    // journal still locked and fail with `RunInFlight`.
    drop(journal);
    finish_job(state, job_id, &job.run_id);
}

/// Releases a finished job's admission slot and live-run entry.
fn finish_job(state: &ServerState, job_id: &str, run_id: &str) {
    let mut live = lock(&state.live_runs);
    if live.get(run_id).map(String::as_str) == Some(job_id) {
        live.remove(run_id);
    }
    drop(live);
    state.inflight.fetch_sub(1, Ordering::Relaxed);
}

/// `GET /runs/<job>`: streams progress lines as chunked JSONL until
/// the job's final summary line has been delivered.
fn stream_progress(state: &Arc<ServerState>, stream: &mut TcpStream, id: &str) {
    let Some(job) = lock(&state.jobs).get(id).cloned() else {
        return respond_error(stream, 404, &format!("no job `{id}`"));
    };
    if write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return;
    }
    let mut next = 0usize;
    loop {
        let (lines, finished) = {
            let mut progress = lock(&job.state);
            while progress.lines.len() == next && !progress.finished {
                let (guard, _timeout) = job
                    .wake
                    .wait_timeout(progress, Duration::from_millis(500))
                    .unwrap_or_else(PoisonError::into_inner);
                progress = guard;
                if state.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            (progress.lines[next..].to_vec(), progress.finished)
        };
        next += lines.len();
        for line in &lines {
            let chunk = format!("{line}\n");
            if write!(stream, "{:x}\r\n{chunk}\r\n", chunk.len()).is_err() {
                return;
            }
        }
        let _ = stream.flush();
        if finished || state.stop.load(Ordering::Relaxed) {
            break;
        }
    }
    let _ = write!(stream, "0\r\n\r\n");
    let _ = stream.flush();
}

/// `GET /results/<key>`: serves a cached output by content address —
/// memory tier first, then the disk store, never recomputing.
fn result_by_key(state: &Arc<ServerState>, stream: &mut TcpStream, key: &str) {
    let Some(parsed) = parse_key_hex(key) else {
        return respond_error(
            stream,
            400,
            "keys are 16 hex digits (as streamed in progress lines)",
        );
    };
    let Some(output) = state.engine.lookup(parsed) else {
        return respond_error(
            stream,
            404,
            &format!("no cached result for key {}", key_hex(parsed)),
        );
    };
    respond_json(stream, 200, &output_json(parsed, &output));
}

fn output_json(key: u64, output: &ScenarioOutput) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("key".to_owned(), Json::Str(key_hex(key)));
    obj.insert(
        "scalars".to_owned(),
        Json::Obj(
            output
                .scalars
                .iter()
                .map(|(name, v)| (name.clone(), Json::Num(*v)))
                .collect(),
        ),
    );
    obj.insert("csv".to_owned(), Json::Str(output.to_csv()));
    Json::Obj(obj)
}

/// `POST /shutdown`: graceful drain. New submissions get 503
/// immediately; running sweeps are cooperatively cancelled (their
/// remaining grid points come back `skipped`, journals flush, runs
/// stay resumable); once the last job released its slot the accept
/// loop is woken and exits.
fn shutdown(state: &Arc<ServerState>, stream: &mut TcpStream) {
    let already = state.draining.swap(true, Ordering::Relaxed);
    state.cancel.store(true, Ordering::Relaxed);
    // Respond before arming the drain waiter: once the waiter sees
    // zero in-flight jobs it stops the accept loop and the process
    // exits, which must not race this response off the wire.
    let mut obj = BTreeMap::new();
    obj.insert("draining".to_owned(), Json::Bool(true));
    obj.insert(
        "inflight".to_owned(),
        Json::Num(state.inflight.load(Ordering::Relaxed) as f64),
    );
    respond_json(stream, 200, &Json::Obj(obj));
    if !already {
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            while state.inflight.load(Ordering::Relaxed) > 0 {
                std::thread::sleep(Duration::from_millis(25));
            }
            state.stop.store(true, Ordering::Relaxed);
            // Wake the blocking accept loop so `run` can return.
            let _ = TcpStream::connect(state.addr);
        });
    }
}
