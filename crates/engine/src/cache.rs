//! The content-addressed result cache (in-memory tier).
//!
//! Keys are a 64-bit FNV-1a hash of `scenario id + parameter
//! fingerprint` (see [`crate::ParamSet::fingerprint`]); values are
//! shared [`ScenarioOutput`]s. Repeated grid points — common when
//! sweeps overlap or a report re-runs a scenario — are served without
//! recomputation. The hash itself lives in
//! [`mramsim_numerics::hash`], shared with the array crate's
//! stray-field kernel cache and the engine's on-disk tier
//! ([`crate::store::DiskStore`], which layers *under* this cache as a
//! read-through/write-through persistent store).
//!
//! The map is bounded: [`ResultCache::with_capacity`] caps the entry
//! count and inserts beyond the cap evict the least-recently-used
//! entry, so an unbounded sweep no longer grows the map without limit.
//! Evictions are counted in [`CacheStats::evictions`] so sweep reports
//! can show cache pressure.

use crate::ScenarioOutput;
use mramsim_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

pub use mramsim_numerics::hash::fnv1a;
use mramsim_numerics::hash::Fnv1a;

/// Hit/miss/eviction counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted to stay within the capacity bound. A non-zero
    /// value in a sweep report means the grid outgrew the in-memory
    /// tier (cache pressure) — warm re-runs will only be fully served
    /// when a disk tier is layered underneath.
    pub evictions: u64,
    /// The capacity bound (`None` = unbounded).
    pub capacity: Option<usize>,
}

/// One stored entry plus its recency stamp.
struct Entry {
    output: Arc<ScenarioOutput>,
    /// Logical clock of the last hit (or the insert); the eviction
    /// victim is the entry with the smallest stamp.
    last_used: u64,
}

/// The map and its logical clock, guarded together.
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A thread-safe, optionally bounded, in-memory result cache.
///
/// # Examples
///
/// ```
/// use mramsim_engine::cache::ResultCache;
/// use mramsim_engine::ScenarioOutput;
/// use std::sync::Arc;
///
/// let cache = ResultCache::with_capacity(2);
/// let key = ResultCache::key("fig4b", "ecd=n…;pitch=n…;");
/// assert!(cache.get(key).is_none());
/// cache.insert(key, Arc::new(ScenarioOutput::default()));
/// assert!(cache.get(key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().capacity, Some(2));
/// ```
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("capacity", &self.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `limit` entries; inserts beyond
    /// the limit evict the least-recently-used entry. A limit of zero
    /// stores nothing (every lookup misses).
    #[must_use]
    pub fn with_capacity(limit: usize) -> Self {
        let mut cache = Self::new();
        cache.capacity = Some(limit);
        cache
    }

    /// The capacity bound (`None` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The content address of one `(scenario, fingerprint)` point.
    #[must_use]
    pub fn key(scenario_id: &str, fingerprint: &str) -> u64 {
        // Streamed with a field separator so ("ab", "c") and ("a", "bc")
        // cannot alias; digests are identical to hashing the
        // `id + NUL + fingerprint` byte string in one shot.
        let mut h = Fnv1a::new();
        h.field(scenario_id.as_bytes());
        h.update(fingerprint.as_bytes());
        h.finish()
    }

    /// Locks the map, recovering from poisoning: a job that panicked
    /// mid-insert leaves the map structurally sound (`HashMap::insert`
    /// is not observable half-done from outside the lock), so later
    /// lookups keep working instead of panic-cascading across every
    /// request of a long-lived server.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a result, counting the hit or miss and refreshing the
    /// entry's recency.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<ScenarioOutput>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.output)
        });
        drop(inner);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("cache.memory_hits", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("cache.memory_misses", 1);
            }
        }
        found
    }

    /// Whether `key` is present, without touching counters or recency.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.lock().map.contains_key(&key)
    }

    /// Stores a result, evicting the least-recently-used entries if the
    /// capacity bound would be exceeded. Concurrent duplicate computes
    /// are benign: the last insert wins and both callers hold
    /// equivalent outputs.
    pub fn insert(&self, key: u64, output: Arc<ScenarioOutput>) {
        if self.capacity == Some(0) {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                output,
                last_used: tick,
            },
        );
        if let Some(limit) = self.capacity {
            while inner.map.len() > limit {
                // O(n) victim scan: bounded by the capacity knob and
                // dwarfed by the seconds-scale jobs the cache fronts.
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("len > limit >= 0 means non-empty");
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("cache.evictions", 1);
            }
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().map.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_points_get_distinct_keys() {
        let a = ResultCache::key("fig4b", "ecd=1;");
        let b = ResultCache::key("fig4b", "ecd=2;");
        let c = ResultCache::key("fig4a", "ecd=1;");
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The separator prevents ("ab", "c") colliding with ("a", "bc").
        assert_ne!(ResultCache::key("ab", "c"), ResultCache::key("a", "bc"));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new();
        let key = ResultCache::key("s", "p");
        assert!(cache.get(key).is_none());
        cache.insert(key, Arc::new(ScenarioOutput::default()));
        assert!(cache.get(key).is_some());
        assert!(cache.get(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, None);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = ResultCache::new();
        let key = ResultCache::key("s", "p");
        cache.insert(key, Arc::new(ScenarioOutput::default()));
        let _ = cache.get(key);
        cache.clear();
        assert!(cache.get(key).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(2);
        let (a, b, c) = (1u64, 2u64, 3u64);
        cache.insert(a, Arc::new(ScenarioOutput::default()));
        cache.insert(b, Arc::new(ScenarioOutput::default()));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(a).is_some());
        cache.insert(c, Arc::new(ScenarioOutput::default()));
        assert!(cache.get(a).is_some(), "recently used entry survived");
        assert!(cache.get(b).is_none(), "LRU entry was evicted");
        assert!(cache.get(c).is_some(), "new entry present");
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(2));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::with_capacity(2);
        cache.insert(1, Arc::new(ScenarioOutput::default()));
        cache.insert(2, Arc::new(ScenarioOutput::default()));
        cache.insert(1, Arc::new(ScenarioOutput::default()));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let cache = ResultCache::with_capacity(0);
        cache.insert(1, Arc::new(ScenarioOutput::default()));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn contains_does_not_disturb_counters() {
        let cache = ResultCache::new();
        cache.insert(1, Arc::new(ScenarioOutput::default()));
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
