//! The content-addressed result cache.
//!
//! Keys are a 64-bit FNV-1a hash of `scenario id + parameter
//! fingerprint` (see [`crate::ParamSet::fingerprint`]); values are
//! shared [`ScenarioOutput`]s. Repeated grid points — common when
//! sweeps overlap or a report re-runs a scenario — are served without
//! recomputation. The hash itself lives in
//! [`mramsim_numerics::hash`], shared with the array crate's
//! stray-field kernel cache.

use crate::ScenarioOutput;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

pub use mramsim_numerics::hash::fnv1a;
use mramsim_numerics::hash::Fnv1a;

/// Hit/miss counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A thread-safe in-memory result cache.
///
/// # Examples
///
/// ```
/// use mramsim_engine::cache::ResultCache;
/// use mramsim_engine::ScenarioOutput;
/// use std::sync::Arc;
///
/// let cache = ResultCache::new();
/// let key = ResultCache::key("fig4b", "ecd=n…;pitch=n…;");
/// assert!(cache.get(key).is_none());
/// cache.insert(key, Arc::new(ScenarioOutput::default()));
/// assert!(cache.get(key).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct ResultCache {
    map: RwLock<HashMap<u64, Arc<ScenarioOutput>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The content address of one `(scenario, fingerprint)` point.
    #[must_use]
    pub fn key(scenario_id: &str, fingerprint: &str) -> u64 {
        // Streamed with a field separator so ("ab", "c") and ("a", "bc")
        // cannot alias; digests are identical to hashing the
        // `id + NUL + fingerprint` byte string in one shot.
        let mut h = Fnv1a::new();
        h.field(scenario_id.as_bytes());
        h.update(fingerprint.as_bytes());
        h.finish()
    }

    /// Looks up a result, counting the hit or miss.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<ScenarioOutput>> {
        let found = self.map.read().expect("cache poisoned").get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a result. Concurrent duplicate computes are benign: the
    /// last insert wins and both callers hold equivalent outputs.
    pub fn insert(&self, key: u64, output: Arc<ScenarioOutput>) {
        self.map
            .write()
            .expect("cache poisoned")
            .insert(key, output);
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.map.write().expect("cache poisoned").clear();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_points_get_distinct_keys() {
        let a = ResultCache::key("fig4b", "ecd=1;");
        let b = ResultCache::key("fig4b", "ecd=2;");
        let c = ResultCache::key("fig4a", "ecd=1;");
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The separator prevents ("ab", "c") colliding with ("a", "bc").
        assert_ne!(ResultCache::key("ab", "c"), ResultCache::key("a", "bc"));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new();
        let key = ResultCache::key("s", "p");
        assert!(cache.get(key).is_none());
        cache.insert(key, Arc::new(ScenarioOutput::default()));
        assert!(cache.get(key).is_some());
        assert!(cache.get(key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = ResultCache::new();
        let key = ResultCache::key("s", "p");
        cache.insert(key, Arc::new(ScenarioOutput::default()));
        let _ = cache.get(key);
        cache.clear();
        assert!(cache.get(key).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }
}
