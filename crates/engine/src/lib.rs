//! # mramsim-engine
//!
//! The unified scenario-execution layer of the `mramsim` workspace:
//! one production entry point over the ten figure drivers, the WER
//! extension, the design-space explorer, and the fault simulator.
//!
//! * [`Scenario`] — the uniform `run(params) -> ScenarioOutput`
//!   interface, with a [`Registry`] of the sixteen standard
//!   scenarios (figures, explorer, faults, Monte-Carlo dynamics, and
//!   the `array-wer` write campaign),
//! * [`SweepPlan`] — cartesian parameter grids (pitch × eCD ×
//!   temperature × voltage × …) with deterministic expansion order
//!   and per-job seeding,
//! * [`Engine`] — cache-aware execution on a shared work-stealing
//!   worker pool ([`pool`], re-exported from `mramsim-numerics`),
//! * a content-addressed, capacity-bounded in-memory result [`cache`]
//!   so repeated grid points are served without recomputation,
//! * a persistent on-disk result [`store`] (schema-versioned, atomic,
//!   corruption-tolerant) layered under the memory tier, so repeats
//!   are served across *processes* too,
//! * checkpointed sweeps via the [`journal`] module: every finished
//!   grid point is durably logged, and an interrupted campaign resumes
//!   with byte-identical output,
//! * a concurrent HTTP/JSON simulation service over one shared engine
//!   ([`serve`]): job submission, streamed progress, content-addressed
//!   result fetches, admission control, and graceful drain,
//! * the `mramsim` CLI binary (`list`, `run`, `sweep`, `serve`,
//!   `report`).
//!
//! # Quickstart
//!
//! ```
//! use mramsim_engine::{Engine, ParamSet, SweepPlan};
//!
//! let engine = Engine::standard().with_workers(4);
//!
//! // One scenario, one parameter point.
//! let run = engine.run("explore", &ParamSet::new().with("ecd", 35.0))?;
//! assert!(run.output.scalar("recommended_pitch_nm").unwrap() > 52.5);
//!
//! // A 2×3 grid, executed in parallel; repeats come from the cache.
//! let plan = SweepPlan::new("fig4b")
//!     .axis("ecd", vec![20.0, 55.0])
//!     .axis("pitch", vec![90.0, 120.0, 200.0]);
//! let sweep = engine.sweep(&plan)?;
//! assert_eq!(sweep.jobs.len(), 6);
//! assert_eq!(engine.sweep(&plan)?.cache_hits, 6);
//! # Ok::<(), mramsim_engine::EngineError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
mod engine;
mod error;
pub mod journal;
mod params;
mod registry;
mod scenario;
pub mod serve;
pub mod store;
mod sweep;

pub use engine::{
    scenario_workers, Engine, JobEvent, RunOutcome, SweepJob, SweepOptions, SweepOutcome,
    DEFAULT_CACHE_CAPACITY,
};
pub use error::EngineError;
pub use journal::{JournalState, SweepJournal};
pub use params::{parse_value, ParamSet, ParamSpec, ParamValue};
pub use registry::Registry;
pub use scenario::{Scenario, ScenarioOutput};
pub use serve::{ServeConfig, Server};
pub use store::{DiskStats, DiskStore};
pub use sweep::SweepPlan;

/// The engine's worker pool, shared with `mramsim-array`'s sweeps.
///
/// The implementation lives in `mramsim_numerics::pool` (the lowest
/// crate both can depend on); this re-export is the canonical path.
pub use mramsim_numerics::pool;
