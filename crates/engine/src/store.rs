//! The on-disk result store: the persistent tier under the in-memory
//! [`crate::cache::ResultCache`].
//!
//! Every entry is one file named by the canonical hex form of the
//! 64-bit FNV-1a content address (`ResultCache::key`), inside a
//! schema-versioned subdirectory (`v1/`), so a serialization change
//! bumps [`SCHEMA_VERSION`] and old entries are simply never looked at
//! again — no migration, no mixed reads.
//!
//! Durability properties:
//!
//! * **Atomic writes** — entries are written to a unique temp file and
//!   renamed into place, so a killed process never leaves a
//!   half-written entry under a valid name.
//! * **Corruption-tolerant reads** — every entry embeds an FNV-1a
//!   checksum of its body; a truncated, tampered, or foreign file
//!   fails closed (the entry is dropped and the result recomputed),
//!   never crashes, and never yields a wrong result silently.
//! * **Exact round-trips** — scalars are stored as bit-exact hex
//!   `f64`s and strings verbatim with byte-length prefixes, so a
//!   result served from disk is byte-identical to the freshly computed
//!   one. This is what makes resumed sweeps produce CSV output
//!   identical to an uninterrupted run.

use crate::{EngineError, ScenarioOutput};
use mramsim_core::report::Table;
use mramsim_numerics::hash::{fnv1a, key_hex, parse_key_hex};
use mramsim_telemetry as telemetry;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag of the on-disk entry format. Part of both the directory
/// layout (`v1/`) and every entry header; bump it whenever the
/// serialization or the meaning of cached results changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Counters of a [`DiskStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries dropped because they failed the checksum or did not
    /// parse (each also counts as a miss).
    pub corrupt: u64,
    /// Writes that failed (out of space, permissions, …); the run
    /// continues, the result is just not persisted.
    pub write_errors: u64,
    /// Bytes of entry text served from disk (hits only).
    pub bytes_read: u64,
    /// Bytes of entry text successfully persisted.
    pub bytes_written: u64,
}

/// A content-addressed, schema-versioned, crash-safe on-disk result
/// store.
///
/// # Examples
///
/// ```
/// use mramsim_engine::store::DiskStore;
/// use mramsim_engine::ScenarioOutput;
///
/// let dir = std::env::temp_dir().join(format!("mramsim-doctest-store-{}", std::process::id()));
/// # std::fs::remove_dir_all(&dir).ok(); // debris from a killed previous run
/// let store = DiskStore::open(&dir)?;
/// let key = 42;
/// assert!(store.load(key).is_none());
/// store.save(key, &ScenarioOutput::default());
/// assert_eq!(store.load(key), Some(ScenarioOutput::default()));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), mramsim_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    write_errors: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`; entries live
    /// in the schema-versioned subdirectory `dir/v1/`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persistence`] when the directory cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, EngineError> {
        let root = dir.as_ref().join(format!("v{SCHEMA_VERSION}"));
        fs::create_dir_all(&root).map_err(|e| EngineError::Persistence {
            path: root.display().to_string(),
            message: format!("cannot create cache directory: {e}"),
        })?;
        Ok(Self {
            root,
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The default cache directory: `$MRAMSIM_CACHE_DIR` when set, else
    /// `~/.cache/mramsim`, else `target/mramsim-cache` (for
    /// environments without a home directory).
    #[must_use]
    pub fn default_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("MRAMSIM_CACHE_DIR") {
            if !dir.is_empty() {
                return PathBuf::from(dir);
            }
        }
        if let Ok(home) = std::env::var("HOME") {
            if !home.is_empty() {
                return Path::new(&home).join(".cache").join("mramsim");
            }
        }
        PathBuf::from("target").join("mramsim-cache")
    }

    /// The schema-versioned directory entries are stored in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{}.mse", key_hex(key)))
    }

    /// Whether an entry file exists for `key`, without reading it or
    /// touching counters (the entry may still fail its checksum on
    /// load).
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.entry_path(key).exists()
    }

    /// Loads the entry for `key`. Missing files are misses; corrupt
    /// files (checksum or parse failure) are dropped from disk and
    /// reported as misses, so the caller falls back to recompute.
    #[must_use]
    pub fn load(&self, key: u64) -> Option<ScenarioOutput> {
        let path = self.entry_path(key);
        let Ok(text) = fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("cache.disk_misses", 1);
            return None;
        };
        match decode_entry(&text) {
            Some(output) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read
                    .fetch_add(text.len() as u64, Ordering::Relaxed);
                telemetry::counter_add("cache.disk_hits", 1);
                telemetry::counter_add("cache.disk_bytes_read", text.len() as u64);
                Some(output)
            }
            None => {
                // Fail closed: drop the bad entry so the recomputed
                // result can take its place.
                let _ = fs::remove_file(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("cache.disk_corrupt", 1);
                telemetry::counter_add("cache.disk_misses", 1);
                None
            }
        }
    }

    /// Persists `output` under `key`, atomically (unique temp file +
    /// rename). Failures are counted, never fatal: a full disk costs
    /// persistence, not the computation that just finished.
    pub fn save(&self, key: u64, output: &ScenarioOutput) {
        let path = self.entry_path(key);
        let tmp = self.root.join(format!(
            "{}.tmp.{}.{}",
            key_hex(key),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let body = encode_entry(output);
        let bytes = body.len() as u64;
        let written = fs::write(&tmp, body).and_then(|()| fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
                telemetry::counter_add("cache.disk_writes", 1);
                telemetry::counter_add("cache.disk_bytes_written", bytes);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("cache.disk_write_errors", 1);
            }
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Wire format: a line-oriented text encoding with byte-length-prefixed
// strings (so titles, cells, and charts may contain anything, newlines
// included) and bit-exact hex f64s. Shared with the sweep journal.
// ---------------------------------------------------------------------

/// Serializer for the wire format.
pub(crate) struct Wire(pub(crate) String);

impl Wire {
    pub(crate) fn new() -> Self {
        Self(String::new())
    }

    /// A `tag <count>` line.
    pub(crate) fn count(&mut self, tag: &str, n: usize) {
        writeln!(self.0, "{tag} {n}").expect("string write");
    }

    /// A byte-length-prefixed string block: `str <len>`, raw bytes,
    /// newline.
    pub(crate) fn string(&mut self, s: &str) {
        writeln!(self.0, "str {}", s.len()).expect("string write");
        self.0.push_str(s);
        self.0.push('\n');
    }

    /// A bit-exact `f64` line.
    pub(crate) fn f64(&mut self, x: f64) {
        writeln!(self.0, "f {}", key_hex(x.to_bits())).expect("string write");
    }
}

/// Cursor-based parser for the wire format. Every accessor returns
/// `None` on any malformation; callers treat that as corruption.
pub(crate) struct WireReader<'a> {
    data: &'a str,
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub(crate) fn new(data: &'a str) -> Self {
        Self { data, pos: 0 }
    }

    fn line(&mut self) -> Option<&'a str> {
        let rest = self.data.get(self.pos..)?;
        let end = rest.find('\n')?;
        self.pos += end + 1;
        Some(&rest[..end])
    }

    /// Parses a `tag <count>` line. The count is validated against the
    /// bytes actually remaining (every counted element occupies at
    /// least one byte), so a corrupt count fails parsing here instead
    /// of reaching a `Vec::with_capacity` that would abort or panic.
    pub(crate) fn count(&mut self, tag: &str) -> Option<usize> {
        let line = self.line()?;
        let n: usize = line.strip_prefix(tag)?.strip_prefix(' ')?.parse().ok()?;
        self.bounded(n)
    }

    /// Parses any `tag <count>` line, returning the tag too (for
    /// type-discriminated records like the journal's parameter
    /// values). The count is bounds-checked as in [`WireReader::count`].
    pub(crate) fn tagged_count(&mut self) -> Option<(&'a str, usize)> {
        let line = self.line()?;
        let (tag, n) = line.split_once(' ')?;
        Some((tag, self.bounded(n.parse().ok()?)?))
    }

    /// `n` if at most the remaining byte count, else `None`.
    fn bounded(&self, n: usize) -> Option<usize> {
        (n <= self.data.len().saturating_sub(self.pos)).then_some(n)
    }

    /// Everything not yet consumed (the journal's free-form done log).
    pub(crate) fn remainder(&self) -> &'a str {
        self.data.get(self.pos..).unwrap_or("")
    }

    /// Parses a string block written by [`Wire::string`].
    pub(crate) fn string(&mut self) -> Option<&'a str> {
        let len = self.count("str")?;
        let end = self.pos.checked_add(len)?;
        let body = self.data.get(self.pos..end)?;
        // `get` guarantees char boundaries; a corrupt length that cuts
        // a UTF-8 sequence (or runs past the end) comes back as None.
        self.pos = end;
        let rest = self.data.get(self.pos..)?;
        if !rest.starts_with('\n') {
            return None;
        }
        self.pos += 1;
        Some(body)
    }

    /// Parses a bit-exact `f64` line written by [`Wire::f64`].
    pub(crate) fn f64(&mut self) -> Option<f64> {
        let line = self.line()?;
        Some(f64::from_bits(parse_key_hex(line.strip_prefix("f ")?)?))
    }

    /// Whether every byte has been consumed (trailing garbage is
    /// corruption too).
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Serializes one [`ScenarioOutput`] to the wire body (no header).
fn serialize_output(output: &ScenarioOutput) -> String {
    let mut w = Wire::new();
    w.count("tables", output.tables.len());
    for table in &output.tables {
        w.string(table.title());
        w.count("columns", table.columns().len());
        for column in table.columns() {
            w.string(column);
        }
        w.count("rows", table.rows().len());
        for row in table.rows() {
            for cell in row {
                w.string(cell);
            }
        }
    }
    w.count("chart", usize::from(output.chart.is_some()));
    if let Some(chart) = &output.chart {
        w.string(chart);
    }
    w.count("scalars", output.scalars.len());
    for (name, value) in &output.scalars {
        w.string(name);
        w.f64(*value);
    }
    w.0
}

/// Parses a wire body back into a [`ScenarioOutput`]; `None` means the
/// body is corrupt.
fn parse_output(body: &str) -> Option<ScenarioOutput> {
    let mut r = WireReader::new(body);
    let n_tables = r.count("tables")?;
    let mut output = ScenarioOutput::default();
    for _ in 0..n_tables {
        let title = r.string()?;
        let n_columns = r.count("columns")?;
        if n_columns == 0 {
            return None; // `Table::new` requires at least one column.
        }
        let mut columns = Vec::with_capacity(n_columns);
        for _ in 0..n_columns {
            columns.push(r.string()?);
        }
        let mut table = Table::new(title, &columns);
        let n_rows = r.count("rows")?;
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(n_columns);
            for _ in 0..n_columns {
                row.push(r.string()?);
            }
            table.push_row(&row);
        }
        output.tables.push(table);
    }
    match r.count("chart")? {
        0 => {}
        1 => output.chart = Some(r.string()?.to_owned()),
        _ => return None,
    }
    let n_scalars = r.count("scalars")?;
    for _ in 0..n_scalars {
        let name = r.string()?.to_owned();
        output.scalars.push((name, r.f64()?));
    }
    r.at_end().then_some(output)
}

/// The full entry text: header, checksum line, body.
fn encode_entry(output: &ScenarioOutput) -> String {
    let body = serialize_output(output);
    format!(
        "mramsim-store v{SCHEMA_VERSION}\nsum {}\n{body}",
        key_hex(fnv1a(body.as_bytes()))
    )
}

/// Decodes an entry file; `None` on any schema, checksum, or parse
/// failure.
fn decode_entry(text: &str) -> Option<ScenarioOutput> {
    let rest = text.strip_prefix(&format!("mramsim-store v{SCHEMA_VERSION}\n"))?;
    let (sum_line, body) = rest.split_once('\n')?;
    let sum = parse_key_hex(sum_line.strip_prefix("sum ")?)?;
    if fnv1a(body.as_bytes()) != sum {
        return None;
    }
    parse_output(body)
}

/// A unique per-test scratch directory, removed on drop. Shared by the
/// store and journal unit tests.
#[cfg(test)]
pub(crate) struct TempDir(pub(crate) PathBuf);

#[cfg(test)]
impl TempDir {
    pub(crate) fn new(label: &str) -> Self {
        use std::sync::atomic::AtomicU32;
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mramsim-engine-test-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

#[cfg(test)]
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_output() -> ScenarioOutput {
        let mut table = Table::new("demo, with commas \"and quotes\"", &["a", "b\nnewline"]);
        table.push_row(&["1", "cell,with,commas"]);
        table.push_row(&["-0.5", "multi\nline\ncell"]);
        ScenarioOutput::from_table(table)
            .with_chart("ascii\nchart body\n".into())
            .with_scalar("psi", 0.1 + 0.2) // deliberately not 0.3
            .with_scalar("neg_zero", -0.0)
            .with_scalar("tiny", 5e-324)
    }

    #[test]
    fn output_round_trips_bit_exactly() {
        let original = rich_output();
        let decoded = decode_entry(&encode_entry(&original)).expect("round trip");
        assert_eq!(decoded, original);
        // Bit-exact scalars: -0.0 and 0.1+0.2 survive exactly.
        assert_eq!(
            decoded.scalar("psi").unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(
            decoded.scalar("neg_zero").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        // The rendered forms (what sweeps emit) match byte for byte.
        assert_eq!(decoded.to_csv(), original.to_csv());
        assert_eq!(decoded.to_markdown(), original.to_markdown());
    }

    #[test]
    fn empty_output_round_trips() {
        let empty = ScenarioOutput::default();
        assert_eq!(decode_entry(&encode_entry(&empty)), Some(empty));
    }

    #[test]
    fn store_round_trips_through_the_filesystem() {
        let dir = TempDir::new("roundtrip");
        let store = DiskStore::open(&dir.0).unwrap();
        let output = rich_output();
        assert!(store.load(7).is_none());
        store.save(7, &output);
        assert!(store.contains(7));
        assert_eq!(store.load(7), Some(output));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        assert_eq!(stats.corrupt, 0);
        // One save, one hit of the same entry: the byte counters agree.
        assert!(stats.bytes_written > 0);
        assert_eq!(stats.bytes_read, stats.bytes_written);
        // A second store over the same directory sees the entry: the
        // cross-process persistence property at module scale.
        let reopened = DiskStore::open(&dir.0).unwrap();
        assert_eq!(reopened.load(7), Some(rich_output()));
    }

    #[test]
    fn corrupt_entries_fail_closed_and_are_dropped() {
        let dir = TempDir::new("corrupt");
        let store = DiskStore::open(&dir.0).unwrap();
        store.save(9, &rich_output());
        let path = store.entry_path(9);

        for vandalism in [
            "not an entry at all".to_owned(),
            // Valid header, checksum of different body.
            encode_entry(&rich_output()).replace("sum ", "sum 0"),
            // Truncation mid-body.
            encode_entry(&rich_output())[..60].to_owned(),
            // Flipped byte inside the body.
            {
                let mut text = encode_entry(&rich_output());
                let flip = text.len() - 2;
                text.replace_range(flip..=flip, "X");
                text
            },
        ] {
            fs::write(&path, &vandalism).unwrap();
            assert_eq!(store.load(9), None, "served a corrupt entry");
            assert!(!path.exists(), "corrupt entry was not dropped");
            // Re-save so the next iteration starts from a valid entry.
            store.save(9, &rich_output());
        }
        assert_eq!(store.stats().corrupt, 4);
    }

    #[test]
    fn absurd_length_fields_fail_parsing_without_panicking() {
        // Length/count fields larger than the data (or usize::MAX,
        // which would overflow arithmetic or abort in
        // `Vec::with_capacity`) must fail closed like any other
        // corruption — even when probed below the checksum layer.
        let body = serialize_output(&rich_output());
        let title_len = rich_output().tables[0].title().len();
        for (from, to) in [
            (format!("str {title_len}"), format!("str {}", usize::MAX)),
            (format!("str {title_len}"), "str 9999999".to_owned()),
            ("tables 1".to_owned(), format!("tables {}", u64::MAX)),
            ("rows 2".to_owned(), "rows 987654321".to_owned()),
            ("scalars 3".to_owned(), format!("scalars {}", usize::MAX)),
        ] {
            let tampered = body.replacen(&from, &to, 1);
            assert_ne!(tampered, body, "tamper `{from}` did not apply");
            assert_eq!(parse_output(&tampered), None, "{to} must fail closed");
        }
    }

    #[test]
    fn schema_version_is_an_invalidation_boundary() {
        let dir = TempDir::new("schema");
        let store = DiskStore::open(&dir.0).unwrap();
        store.save(1, &rich_output());
        // A future schema's directory is disjoint …
        assert!(dir.0.join(format!("v{SCHEMA_VERSION}")).exists());
        // … and an entry whose header claims another version is
        // rejected even if it lands in this directory.
        let foreign = encode_entry(&rich_output()).replacen(
            &format!("v{SCHEMA_VERSION}"),
            &format!("v{}", SCHEMA_VERSION + 1),
            1,
        );
        fs::write(store.entry_path(1), foreign).unwrap();
        assert_eq!(store.load(1), None);
    }

    #[test]
    fn save_is_atomic_no_temp_debris_on_success() {
        let dir = TempDir::new("atomic");
        let store = DiskStore::open(&dir.0).unwrap();
        for key in 0..10u64 {
            store.save(key, &rich_output());
        }
        let leftovers: Vec<_> = fs::read_dir(store.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "mse"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }
}
